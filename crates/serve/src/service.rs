//! The prediction engine: bounded queue → micro-batching collector → worker
//! pool → batched model evaluation over sharded, byte-budgeted feature-store
//! caching, with misses routed to a dedicated precompute pool.
//!
//! Requests enter a bounded FIFO. Each worker drains up to
//! [`ServeConfig::max_batch`] requests, waiting at most
//! [`ServeConfig::batch_deadline`] for stragglers (flush-on-size-or-deadline
//! micro-batching), groups the batch by region feature-store key, and probes
//! the shared [`ShardedStoreCache`]:
//!
//! - **Hit** → one batched MLP forward pass per group through a worker-owned
//!   scratch arena; the response leaves in microseconds.
//! - **Miss** (under [`MissPolicy::AsyncPool`], the default) → the group
//!   *parks*: its jobs are attached to a single-flight in-flight entry for
//!   the key and the build is queued to the dedicated precompute pool. The
//!   worker moves straight on to the next batch, so **a cold region never
//!   stalls the hit path**. Concurrent misses on the same key coalesce onto
//!   the one in-flight build instead of each computing (or each blocking).
//!   When the store lands in the cache, the parked jobs are re-enqueued at
//!   the front of the request queue and complete as ordinary hits (reported
//!   with `cached: false` — their store was built on demand).
//! - **Miss under load** (with [`ServeConfig::miss_slo`] or a per-request
//!   `deadline_ms`) → if the projected wait (pool backlog × the observed
//!   per-build latency EWMA, see [`shed_decision`]) exceeds the deadline,
//!   the request is *shed*: answered immediately with the analytic
//!   min-bound CPI computed directly from the trace (no store build),
//!   flagged `{"approx": true, "reason": "shed"}`. The exact build still
//!   runs, so follow-up queries get exact cache hits.
//! - **Miss** (under [`MissPolicy::Inline`]) → the worker that took the
//!   batch builds the store itself, blocking its batch — the pre-pool
//!   behavior, kept as the baseline the `serve_cold_warm` bench compares
//!   against.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use concorde_core::arena::ArenaEncoding;
use concorde_core::cache::{
    sweep_content_hash, CacheStats, FeatureKey, ShardStats, ShardedStoreCache, StoreArtifact,
};
use concorde_core::features::FeatureStore;
use concorde_core::minbound::MinBoundEstimator;
use concorde_core::model::{ConcordePredictor, ModelEncoding, PredictScratch};
use concorde_core::schema::{FeatureSchema, SCHEMA_VERSION};
use concorde_core::sweep::{ReproProfile, SweepConfig};
use concorde_cyclesim::MicroArch;
use concorde_ml::QuantizedMlp;
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::metrics::{Histogram, HistogramSnapshot, PromWriter};
use crate::protocol::{PredictRequest, PredictResponse, RequestClass, N_CLASSES};
use crate::slots::{SlotPool, SlotReceiver, SlotSender};

/// Largest per-request region length the service will generate (the paper's
/// full-scale regions are 100k instructions; this leaves ample headroom
/// while bounding the memory one request can demand).
pub const MAX_REGION_LEN: u32 = 1 << 20;

/// Largest `@budget` suffix accepted on a wire-supplied `riscv:` workload id
/// when on-demand resolution is enabled ([`ServeConfig::dynamic_root`]).
/// Resolution interprets the binary for up to this many instructions inline,
/// so the cap bounds the CPU one admission can burn (16 Mi instructions,
/// 16× the front end's default budget).
pub const MAX_WIRE_RISCV_BUDGET: u64 = 1 << 24;

/// Which parameter sweep each region's feature store precomputes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepScope {
    /// The §5.2.3 power-of-two quantized sweep: one (expensive) precompute
    /// per region serves *any* microarchitecture afterwards — the
    /// design-space-exploration shape.
    Quantized,
    /// A minimal per-architecture sweep: cheap precompute, but the store is
    /// only reusable for queries that quantize onto the same grid.
    PerArch,
}

/// What a worker does with a batch group whose feature store is not cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissPolicy {
    /// Park the group on a single-flight in-flight entry and hand the build
    /// to the dedicated precompute pool; the worker keeps serving hits.
    #[default]
    AsyncPool,
    /// Build the store inline on the worker that took the batch, blocking
    /// it (the pre-pool behavior; the bench baseline).
    Inline,
}

/// Per-class miss-wait SLOs (`--slo interactive=25,batch=500`, milliseconds).
///
/// A request's *effective deadline* resolves per job as: its own wire
/// `deadline_ms`, else its class's SLO here, else the server-wide
/// [`ServeConfig::miss_slo`]. The deadline feeds both the shed decision
/// ([`shed_decision`]) and the precompute pool's EDF ordering
/// ([`pick_task`]) — a class with no SLO configured behaves exactly as
/// before this knob existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassSlo {
    slos: [Option<Duration>; N_CLASSES],
}

impl ClassSlo {
    /// Sets one class's SLO.
    pub fn set(&mut self, class: RequestClass, slo: Duration) {
        self.slos[class.index()] = Some(slo);
    }

    /// The SLO configured for `class`, if any.
    pub fn get(&self, class: RequestClass) -> Option<Duration> {
        self.slos[class.index()]
    }

    /// True when no class has an SLO (the default: per-class QoS off).
    pub fn is_empty(&self) -> bool {
        self.slos.iter().all(Option::is_none)
    }

    /// Parses the `--slo` flag syntax: comma-separated `class=millis`
    /// entries, e.g. `interactive=25,batch=500`. Unlisted classes keep no
    /// SLO; listing a class twice is an error (a silent last-wins would
    /// hide operator typos).
    pub fn parse(s: &str) -> Result<ClassSlo, String> {
        let mut out = ClassSlo::default();
        for entry in s.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, ms) = entry
                .split_once('=')
                .ok_or_else(|| format!("`{entry}`: expected class=millis"))?;
            let class = RequestClass::parse(name.trim())
                .ok_or_else(|| format!("`{name}`: unknown request class (interactive | batch)"))?;
            let ms: u64 = ms
                .trim()
                .parse()
                .map_err(|_| format!("`{ms}`: not a millisecond count"))?;
            if out.get(class).is_some() {
                return Err(format!("class `{class}` listed twice"));
            }
            out.set(class, Duration::from_millis(ms));
        }
        Ok(out)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = `available_parallelism - 1`, at least 1).
    pub workers: usize,
    /// Bounded request-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Flush a collecting batch at this many requests.
    pub max_batch: usize,
    /// Flush a collecting batch at this age even if not full.
    pub batch_deadline: Duration,
    /// Feature-store cache shard count (0 = 8). Each shard has its own lock,
    /// so hot-region lookups don't contend with cold-region insertions.
    pub cache_shards: usize,
    /// Feature-store cache byte budget across all shards
    /// ([`FeatureStore::approx_bytes`] accounting).
    pub cache_bytes: usize,
    /// Dedicated precompute-pool threads for cache misses
    /// (0 = half the cores, at least 1). Unused under [`MissPolicy::Inline`].
    pub precompute_workers: usize,
    /// What a worker does with a batch group whose store is not cached.
    pub miss_policy: MissPolicy,
    /// Concurrent TCP connections accepted before new ones get a typed
    /// `busy` error (min 1).
    pub max_connections: usize,
    /// Sweep each store precomputes.
    pub sweep: SweepScope,
    /// Arena encoding for stores built on the miss path (`--encoding`):
    /// `f16`/`int8` shrink the per-region footprint 2–4×, multiplying how
    /// many regions fit under [`ServeConfig::cache_bytes`] at a small,
    /// bounded prediction drift. Preloaded artifacts keep their own encoding.
    pub store_encoding: ArenaEncoding,
    /// Miss-wait SLO (`--miss-slo-ms`): on a cache miss, if the projected
    /// wait for the feature-store build (precompute-pool backlog × the
    /// observed per-build latency EWMA, per pool worker — see
    /// [`shed_decision`]) exceeds this, the request is *shed*: answered
    /// immediately with the analytic min-bound CPI, flagged
    /// `{"approx": true, "reason": "shed"}`, while the exact build still
    /// runs and lands in the cache for later requests. A per-request
    /// `deadline_ms` overrides this default. `None` (the default) disables
    /// shedding — misses park until their store lands, exactly the pre-SLO
    /// behavior. Only meaningful under [`MissPolicy::AsyncPool`].
    pub miss_slo: Option<Duration>,
    /// Per-class miss-wait SLOs (`--slo`): a middle resolution tier between
    /// a request's own `deadline_ms` and the server-wide
    /// [`ServeConfig::miss_slo`]. Empty by default (per-class QoS off).
    pub class_slo: ClassSlo,
    /// Weight encoding the inference tier computes with
    /// (`--model-encoding`). [`ModelEncoding::Int8`] quantizes the trained
    /// model once at startup and evaluates groups through the fused
    /// dequantize-assembly path ([`ConcordePredictor::predict_quantized`]);
    /// prediction drift vs `f32` is bounded `< 5%` (same contract as int8
    /// *store* encoding, and the two compose).
    pub model_encoding: ModelEncoding,
    /// Idle-connection reap timeout (`--read-timeout-ms`): a TCP connection
    /// that sends no complete request line for this long is closed. `None`
    /// (the default) never reaps — connections may idle forever, the
    /// pre-hardening behavior. Independent of drain: a draining server
    /// closes idle connections immediately.
    pub read_timeout: Option<Duration>,
    /// Maximum accepted request-line length in bytes (`--max-line-bytes`).
    /// A connection that exceeds it mid-line gets a typed `oversized` error
    /// and is closed — the server never buffers an unbounded line.
    pub max_line_bytes: usize,
    /// Deterministic fault-injection plan for the chaos harness (tests pass
    /// one here; operators set `CONCORDE_FAULT_PLAN`). `None` = no faults.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Root directory for on-demand dynamic workload resolution
    /// (`--dynamic-workloads DIR`). `None` (the default) means
    /// client-supplied ids are validated against the suite catalog and
    /// workloads already registered in-process (preloaded artifacts, CLI
    /// operands) only: an unseen `riscv:<path>` id from the wire is refused
    /// instead of reading and executing a server-side file. With a root
    /// set, unseen `riscv:` ids are resolved on demand when the ELF path
    /// canonicalizes inside the root, with the `@budget` suffix capped at
    /// [`MAX_WIRE_RISCV_BUDGET`] and resolver failures reported to clients
    /// as one uniform message (details go to the server log, so error text
    /// cannot be used to probe the filesystem).
    pub dynamic_root: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 4096,
            max_batch: 128,
            batch_deadline: Duration::from_millis(1),
            cache_shards: 0,
            cache_bytes: 512 << 20,
            precompute_workers: 0,
            miss_policy: MissPolicy::AsyncPool,
            max_connections: 256,
            sweep: SweepScope::PerArch,
            store_encoding: ArenaEncoding::F32,
            miss_slo: None,
            class_slo: ClassSlo::default(),
            model_encoding: ModelEncoding::F32,
            read_timeout: None,
            max_line_bytes: 1 << 20,
            fault_plan: None,
            dynamic_root: None,
        }
    }
}

impl ServeConfig {
    /// Worker threads a service started with this config runs.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .saturating_sub(1)
            .max(1)
    }

    /// Cache shards a service started with this config uses.
    pub fn effective_cache_shards(&self) -> usize {
        if self.cache_shards > 0 {
            self.cache_shards
        } else {
            8
        }
    }

    /// Precompute-pool threads a service started with this config runs
    /// (ignored under [`MissPolicy::Inline`]).
    pub fn effective_precompute_workers(&self) -> usize {
        if self.precompute_workers > 0 {
            return self.precompute_workers;
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .div_ceil(2)
            .max(1)
    }
}

/// The load-shedding decision: should a cache-miss request be answered with
/// the degraded analytic min-bound now, instead of parking on the precompute
/// pool until its exact feature store lands?
///
/// `backlog` is the number of builds the request would wait behind (its own
/// included) *per pool worker*; `ewma_us` is the observed per-build latency
/// EWMA in microseconds; `deadline_us` is the request's own deadline (wire
/// `deadline_ms`, converted), which overrides the server-wide `slo_us`
/// (`--miss-slo-ms`). The request is shed iff a limit is configured and the
/// projected wait `backlog × ewma_us` exceeds it.
///
/// Guarantees (pinned by the monotonicity proptest in `tests/serving_shed.rs`):
///
/// - **Monotone in load**: growing `backlog` or `ewma_us` never flips an
///   already-shed request back to waiting.
/// - **Monotone in urgency**: tightening the effective deadline never flips
///   shed → wait.
/// - **Conservative bootstrap**: with no limit configured, or before any
///   build has been observed (`ewma_us == 0`), nothing is shed.
pub fn shed_decision(
    backlog: usize,
    ewma_us: u64,
    slo_us: Option<u64>,
    deadline_us: Option<u64>,
) -> bool {
    let Some(limit_us) = deadline_us.or(slo_us) else {
        return false;
    };
    // u128: usize × u64 cannot overflow, so the product is exact and the
    // decision stays monotone even at absurd backlog/EWMA values.
    (backlog as u128) * u128::from(ewma_us) > u128::from(limit_us)
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is at capacity; retry after draining.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
    /// The worker dropped the response channel (service torn down mid-call).
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Disconnected => write!(f, "service dropped the in-flight request"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Live engine counters (all monotonic except the `*_depth`/gauge fields),
/// plus the per-class request-path histograms the `/metrics` exposition
/// renders. The legacy `avg_latency_us`/`max_latency_us` stats are *derived*
/// from the latency histogram (see [`Metrics::latency_merged`]) so the JSON
/// stats and the Prometheus scrape can never disagree.
#[derive(Debug)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    errored: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    batch_requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    precomputes: AtomicU64,
    /// Shed answers, by request class.
    shed: [AtomicU64; N_CLASSES],
    shed_build_skips: AtomicU64,
    /// `{"type":"upgrade"}` follow-up lines pushed (exact answers landing
    /// after a `notify: true` shed reply). Not counted in `completed` — the
    /// primary response already was.
    upgrades: AtomicU64,
    /// Requests rejected for pinning a `schema_version` the server does not
    /// speak.
    schema_mismatches: AtomicU64,
    /// Panics caught anywhere in worker/pool job execution (each one
    /// answered its jobs with typed `reason: "internal"` errors instead of
    /// taking the thread down or stranding waiters).
    pub(crate) worker_panics: AtomicU64,
    /// Worker/pool loops restarted by the supervisor after a panic escaped
    /// the per-job guards.
    pub(crate) worker_restarts: AtomicU64,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
    /// End-to-end latency (enqueue → response, seconds), by request class.
    latency: [Histogram; N_CLASSES],
    /// Enqueue → batch-collection wait (seconds), by request class. First
    /// pass only: a re-enqueued parked job is not re-observed (its park time
    /// shows up in end-to-end latency, not queue wait).
    queue_wait: [Histogram; N_CLASSES],
    /// Requests per executed batch.
    batch_size: Histogram,
    /// Feature-store build latency (seconds), pool and inline builds alike.
    store_build: Histogram,
    pub(crate) busy_rejected: AtomicU64,
    pub(crate) conn_active: AtomicUsize,
}

/// Latency/queue-wait bucket layout: 10µs → ~84s in ×2 steps, constant
/// relative resolution across the hit-path-µs to cold-build-s span.
fn latency_histogram() -> Histogram {
    Histogram::log_buckets(1e-5, 2.0, 23)
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            precomputes: AtomicU64::new(0),
            shed: std::array::from_fn(|_| AtomicU64::new(0)),
            shed_build_skips: AtomicU64::new(0),
            upgrades: AtomicU64::new(0),
            schema_mismatches: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            max_queue_depth: AtomicUsize::new(0),
            latency: std::array::from_fn(|_| latency_histogram()),
            queue_wait: std::array::from_fn(|_| latency_histogram()),
            // 1, 2, 4, … 256 requests — brackets `max_batch` defaults.
            batch_size: Histogram::log_buckets(1.0, 2.0, 9),
            // 1ms → ~32s: cold feature-store builds are milliseconds-to-
            // seconds scale.
            store_build: Histogram::log_buckets(1e-3, 2.0, 16),
            busy_rejected: AtomicU64::new(0),
            conn_active: AtomicUsize::new(0),
        }
    }
}

impl Metrics {
    fn observe_latency(&self, class: RequestClass, us: u64) {
        self.latency[class.index()].observe(us as f64 / 1e6);
    }

    /// All classes' latency histograms merged — the single source of the
    /// legacy global `avg_latency_us`/`max_latency_us` stats.
    fn latency_merged(&self) -> HistogramSnapshot {
        let mut merged = self.latency[0].snapshot();
        for h in &self.latency[1..] {
            merged.merge(&h.snapshot());
        }
        merged
    }

    /// Consistent-enough point-in-time copy of the atomic counters; the
    /// in-flight and cache fields are filled in by [`Shared::snapshot`].
    fn counters(&self) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batch_requests = self.batch_requests.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let latency = self.latency_merged();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            errored: self.errored.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches,
            avg_batch: if batches == 0 {
                0.0
            } else {
                batch_requests as f64 / batches as f64
            },
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            coalesced: self.coalesced.load(Ordering::Relaxed),
            precomputes: self.precomputes.load(Ordering::Relaxed),
            shed: self.shed.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
            shed_build_skips: self.shed_build_skips.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            schema_mismatches: self.schema_mismatches.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            // Miss-path gauges (parked, backlog, EWMA) are filled in by
            // [`Shared::snapshot_with`] under a consistent lock pair.
            parked: 0,
            miss_backlog: 0,
            build_ewma_us: 0,
            inflight_builds: 0,
            cache_evictions: 0,
            cache_bytes: 0,
            cache_stores: 0,
            busy_rejected: self.busy_rejected.load(Ordering::Relaxed),
            active_connections: self.conn_active.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            // Derived from the histogram, not tracked beside it: the two
            // reporting paths cannot drift. Observations are whole-µs
            // durations recorded in seconds, so ×1e6 + round recovers them
            // exactly (f64 is exact for integers up to 2^53).
            avg_latency_us: latency.mean() * 1e6,
            max_latency_us: (latency.max * 1e6).round() as u64,
        }
    }
}

/// Serializable [`Metrics`] snapshot (the `{"cmd": "metrics"}` reply).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses delivered (success or error).
    pub completed: u64,
    /// Error responses among `completed`.
    pub errored: u64,
    /// Submissions rejected for a full queue.
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub avg_batch: f64,
    /// Batch groups whose feature store was cached.
    pub cache_hits: u64,
    /// Batch groups that triggered a new precompute.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
    /// Requests that joined an already in-flight precompute for their key
    /// instead of triggering their own (single-flight deduplication).
    #[serde(default)]
    pub coalesced: u64,
    /// Feature-store builds executed (pool or inline).
    #[serde(default)]
    pub precomputes: u64,
    /// Cache-miss requests answered with the degraded analytic min-bound
    /// (`approx: true`) because their projected wait exceeded the SLO or
    /// their `deadline_ms`.
    #[serde(default)]
    pub shed: u64,
    /// Speculative builds (fully-shed groups, nobody waiting) skipped
    /// because the pool backlog already exceeded the backstop — a non-zero
    /// value means a cold storm is outrunning the precompute pool.
    #[serde(default)]
    pub shed_build_skips: u64,
    /// `{"type":"upgrade"}` exact-answer follow-ups pushed to `notify: true`
    /// shed requests (not counted in `completed` — their shed reply was).
    #[serde(default)]
    pub upgrades: u64,
    /// Requests rejected with the typed `schema_mismatch` error for pinning
    /// a `schema_version` the server does not speak.
    #[serde(default)]
    pub schema_mismatches: u64,
    /// Panics caught during worker/pool job execution; each answered its
    /// jobs with typed `reason: "internal"` errors instead of poisoning a
    /// lock or stranding waiters.
    #[serde(default)]
    pub worker_panics: u64,
    /// Worker/pool loops restarted by the panic supervisor.
    #[serde(default)]
    pub worker_restarts: u64,
    /// Requests currently parked awaiting an in-flight precompute (gauge).
    /// Read under the same locks as [`MetricsSnapshot::miss_backlog`], so one
    /// snapshot's pair is mutually consistent.
    #[serde(default)]
    pub parked: usize,
    /// Builds waiting in the precompute-pool queue, not yet picked up by a
    /// pool worker (gauge; consistent with [`MetricsSnapshot::parked`]).
    #[serde(default)]
    pub miss_backlog: usize,
    /// Observed per-build latency EWMA in microseconds — the multiplier of
    /// the [`shed_decision`] projected-wait estimate (0 until the first
    /// build completes).
    #[serde(default)]
    pub build_ewma_us: u64,
    /// Precomputes currently in flight (gauge).
    #[serde(default)]
    pub inflight_builds: usize,
    /// Stores evicted from the cache to stay within the byte budget.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Resident cache bytes.
    #[serde(default)]
    pub cache_bytes: usize,
    /// Resident cached stores.
    #[serde(default)]
    pub cache_stores: usize,
    /// TCP connections turned away with a `busy` error.
    #[serde(default)]
    pub busy_rejected: u64,
    /// Currently open TCP connections (gauge).
    #[serde(default)]
    pub active_connections: usize,
    /// Current queue depth.
    pub queue_depth: usize,
    /// High-water queue depth.
    pub max_queue_depth: usize,
    /// Mean enqueue→response latency (µs).
    pub avg_latency_us: f64,
    /// Worst enqueue→response latency (µs).
    pub max_latency_us: u64,
}

/// The `{"cmd": "stats"}` reply: metrics plus the cache occupancy report
/// operators size `--cache-bytes` and `--cache-shards` with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Engine counters.
    pub metrics: MetricsSnapshot,
    /// Cache budget + per-shard occupancy.
    pub cache: CacheReport,
    /// Worker threads serving batches.
    pub workers: usize,
    /// Dedicated precompute-pool threads.
    pub precompute_workers: usize,
    /// Concurrent TCP connection cap.
    pub max_connections: usize,
    /// Arena encoding of stores built on the miss path (`--encoding`).
    #[serde(default)]
    pub store_encoding: Option<ArenaEncoding>,
    /// Miss-wait SLO in milliseconds (`--miss-slo-ms`); `None` = shedding
    /// disabled unless a request carries its own `deadline_ms`.
    #[serde(default)]
    pub miss_slo_ms: Option<u64>,
    /// Model-weight encoding the inference tier computes with
    /// (`--model-encoding`).
    #[serde(default)]
    pub model_encoding: Option<ModelEncoding>,
    /// Active MLP microkernel (`scalar` / `avx2_fma` / `neon`).
    #[serde(default)]
    pub kernel: Option<String>,
}

/// Cache shape + occupancy section of [`ServiceStats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheReport {
    /// Configured byte budget across all shards.
    pub budget_bytes: usize,
    /// Shard count.
    pub shard_count: usize,
    /// Aggregate counters.
    pub totals: CacheStats,
    /// Per-shard occupancy and counters.
    pub per_shard: Vec<ShardStats>,
}

/// Where a job's response goes: a recycled slot from the service's
/// [`SlotPool`] (the warm path — no per-request channel allocation), or a
/// plain mpsc sender (the compatibility shim behind [`crate::Client::submit`],
/// whose public signature returns an `mpsc::Receiver`).
pub(crate) enum ResponseTx {
    /// Generation-tagged slab slot (see [`crate::slots`]).
    Slot(SlotSender),
    /// Legacy per-request channel.
    Mpsc(mpsc::Sender<PredictResponse>),
}

impl ResponseTx {
    fn send(&self, resp: PredictResponse) {
        match self {
            ResponseTx::Slot(tx) => tx.send(resp),
            ResponseTx::Mpsc(tx) => {
                let _ = tx.send(resp);
            }
        }
    }
}

pub(crate) struct Job {
    req: PredictRequest,
    enqueued: Instant,
    tx: ResponseTx,
    /// True once the job has been parked on an in-flight precompute and
    /// re-enqueued: its store was built on demand, so the response must
    /// report `cached: false` even though the re-run finds a cache hit.
    parked: bool,
    /// Effective deadline for QoS: `enqueued` + the first of the request's
    /// own `deadline_ms`, its class SLO ([`ServeConfig::class_slo`]), or the
    /// server-wide [`ServeConfig::miss_slo`]. `None` when none is
    /// configured. Drives the precompute pool's EDF ordering; the shed
    /// decision derives the same resolution independently (it needs the
    /// duration, not the instant).
    deadline: Option<Instant>,
    /// True for a `notify: true` job that already received its shed answer
    /// and is parked again only to be *upgraded*: when the exact store
    /// lands, it gets a `{"type":"upgrade"}` line instead of an ordinary
    /// response, and it must never be shed again.
    upgrade: bool,
}

impl Job {
    /// The request's effective miss-wait budget in µs for [`shed_decision`]
    /// (the same resolution chain as [`Job::deadline`], minus the
    /// server-wide tier, which `shed_decision` applies itself as `slo_us`).
    fn deadline_us(&self, class_slo: &ClassSlo) -> Option<u64> {
        self.req
            .deadline_ms
            .map(|ms| ms.saturating_mul(1_000))
            .or_else(|| class_slo.get(self.req.class).map(|d| d.as_micros() as u64))
    }
}

/// A queued cache-miss build for the precompute pool.
struct PrecomputeTask {
    key: FeatureKey,
    sweep: Arc<SweepConfig>,
    /// Arrival order, the FIFO tie-breaker when parked counts are equal.
    seq: u64,
    /// Times a pop chose a different task over this one; at
    /// [`MAX_BYPASS`] the task is built regardless of parked counts.
    bypassed: u32,
    /// Times this build has already crashed and been re-queued; at
    /// [`MAX_BUILD_RETRIES`] the waiters are failed with a typed error
    /// instead of retrying again.
    retries: u32,
}

/// How many times a panicking store build is re-queued (keeping its
/// single-flight entry and parked waiters) before the waiters are answered
/// with a typed internal error. One retry absorbs transient faults — an
/// injected chaos panic, an OOM-killed helper thread — while a
/// deterministic crash still fails fast.
const MAX_BUILD_RETRIES: u32 = 1;

/// How many pops may skip a queued build before it is forced to run —
/// bounds waiter latency so parked-count priority cannot starve a
/// single-waiter cold key under a stream of hotter ones.
const MAX_BYPASS: u32 = 4;

/// Per-pool-worker cap on builds outstanding before a *fully-shed* group
/// (no job waits on the result) skips registering its build. A parked
/// waiter applies natural backpressure — its client blocks until the store
/// lands — but shed clients get an answer in milliseconds and can keep
/// firing cold keys faster than the pool builds them; past this backlog
/// the speculative builds are pure queue growth (the byte budget would
/// evict them unread), so they are skipped and a later request for the key
/// simply registers the build then.
const SPECULATIVE_BACKLOG_MAX: usize = 32;

/// Size caps for the shed-answer memo ([`Shared::shed_cache`]): at most
/// this many keys (the map is cleared wholesale beyond it — the values are
/// deterministic, so a re-computation is a cost, never an error) and at
/// most this many architectures remembered per key.
const SHED_CACHE_MAX_KEYS: usize = 256;
const SHED_CACHE_MAX_ARCHS: usize = 64;

/// Picks the next build, earliest-effective-deadline-first (EDF): `prio`
/// maps a key to (earliest deadline among its parked waiters, parked
/// count). The task with the earliest deadline builds first; a key with any
/// deadline beats a key with none; ties (including the no-SLO
/// configuration, where every deadline is `None`) fall back to the prior
/// policy — most parked waiters, then FIFO on seq — so QoS-off servers
/// schedule exactly as before. Exception: a task bypassed [`MAX_BYPASS`]
/// times is picked first (oldest such), guaranteeing the progress the old
/// FIFO queue gave — a starving key's waiters have blown any deadline
/// already, so the backstop outranks EDF.
fn pick_task(
    tasks: &[PrecomputeTask],
    prio: impl Fn(&FeatureKey) -> (Option<Instant>, usize),
) -> usize {
    if let Some((i, _)) = tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.bypassed >= MAX_BYPASS)
        .min_by_key(|(_, t)| t.seq)
    {
        return i;
    }
    // Placeholder instant for "no deadline": the leading `is_none` tuple
    // component already ranks those last, so the value only ever compares
    // against itself.
    let far = Instant::now();
    tasks
        .iter()
        .enumerate()
        .min_by_key(|(_, t)| {
            let (deadline, count) = prio(&t.key);
            (
                deadline.is_none(),
                deadline.unwrap_or(far),
                std::cmp::Reverse(count),
                t.seq,
            )
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// One run-queue shard: its own lock and wakeup channel. Submitters spread
/// jobs round-robin across shards; each worker drains "its" shard first and
/// steals from the others when it comes up empty, so steady-state submission
/// and collection never serialize on one global queue lock.
struct Shard {
    q: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    model: ConcordePredictor,
    /// Int8 snapshot of `model`'s MLP, built once at startup when
    /// `cfg.model_encoding` is [`ModelEncoding::Int8`]; `None` ⇒ serve f32.
    qmlp: Option<QuantizedMlp>,
    profile: ReproProfile,
    /// Per-worker run-queue shards (see [`Shard`]).
    shards: Vec<Shard>,
    /// Jobs across all shards, *including* slots reserved by an in-progress
    /// push — the capacity check, the depth gauge, and the shutdown drain
    /// test all read this instead of sweeping every shard lock.
    queue_len: AtomicUsize,
    /// Round-robin shard cursor for submissions.
    rr: AtomicUsize,
    /// Recycled response slots (the warm path's channel replacement).
    slot_pool: Arc<SlotPool>,
    /// The §5.2.3 quantized sweep + its content hash, computed once at
    /// startup: under [`SweepScope::Quantized`] every request shares this
    /// one config, so the hot path neither rebuilds the grids nor re-hashes
    /// them per job.
    quant_sweep: Arc<SweepConfig>,
    quant_sweep_hash: u64,
    cache: ShardedStoreCache,
    /// Single-flight registry: key → jobs parked on that key's in-flight
    /// build. Presence of an entry means exactly one build is queued or
    /// running for the key.
    inflight: Mutex<HashMap<FeatureKey, Vec<Job>>>,
    /// Number of in-flight precomputes; workers may only exit at shutdown
    /// once this reaches zero (parked jobs still need re-enqueuing).
    inflight_builds: AtomicUsize,
    /// Pending builds, popped by parked-request count (see [`pick_task`]),
    /// not FIFO — the small scan is cheap next to any single build.
    pre_queue: Mutex<Vec<PrecomputeTask>>,
    /// Arrival stamp for queued builds (the FIFO tie-breaker).
    pre_seq: AtomicU64,
    pre_notify: Condvar,
    /// Precompute-pool threads serving this engine (0 under
    /// [`MissPolicy::Inline`]) — the divisor of the shed projected-wait
    /// estimate.
    n_pool: usize,
    /// Observed per-build latency EWMA (µs, α = 1/4); 0 until the first
    /// build completes, which keeps [`shed_decision`] conservative before
    /// any latency has been observed.
    build_ewma_us: AtomicU64,
    /// Min-bound answers already computed for shed keys: key → (arch, CPI)
    /// pairs, so a storm of repeated shed requests on one key pays the
    /// trace analysis once instead of per request. Entries are dropped when
    /// the key's exact build lands (the bound is then obsolete — the store
    /// answers exactly), and the map is size-capped (see
    /// [`SHED_CACHE_MAX_KEYS`]) so skipped speculative builds cannot grow
    /// it without bound.
    shed_cache: Mutex<HashMap<FeatureKey, Vec<(MicroArch, f64)>>>,
    pub(crate) metrics: Metrics,
    /// Fault-injection plan (the chaos harness's hooks); the default empty
    /// plan costs one branch per hook.
    pub(crate) faults: Arc<FaultPlan>,
    /// Graceful-drain flag: set by `{"cmd":"drain"}` / SIGTERM. The TCP
    /// accept loop stops accepting, connection handlers close once idle,
    /// and `/readyz` flips to 503; in-flight work still completes.
    pub(crate) draining: AtomicBool,
    shutdown: AtomicBool,
    /// Second-phase shutdown: set only after the batch workers have drained,
    /// so the pool never abandons a build whose parked jobs a worker is
    /// still waiting to serve.
    pool_shutdown: AtomicBool,
    /// Cache-miss precomputes currently running; divides the per-precompute
    /// thread budget so concurrent misses share the cores instead of each
    /// spawning `available_parallelism` threads.
    active_precomputes: AtomicUsize,
}

impl Shared {
    /// Metrics merged with live cache + in-flight state.
    fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with(&self.cache.stats())
    }

    /// Like [`Shared::snapshot`] but reusing an already-taken cache-stats
    /// sample, so one `{"cmd": "stats"}` reply is internally consistent.
    fn snapshot_with(&self, cache: &CacheStats) -> MetricsSnapshot {
        let mut snap = self.metrics.counters();
        // Pool-queue depth and parked-request count are read under the same
        // two locks (pre_queue → inflight, the pool's own order), so one
        // stats reply cannot report a parked request whose build the same
        // reply says is neither queued nor in flight.
        {
            let pq = self.pre_queue.lock().unwrap_or_else(|e| e.into_inner());
            let inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            snap.miss_backlog = pq.len();
            snap.parked = inflight.values().map(Vec::len).sum();
        }
        snap.build_ewma_us = self.build_ewma_us.load(Ordering::Relaxed);
        snap.inflight_builds = self.inflight_builds.load(Ordering::Relaxed);
        snap.cache_evictions = cache.evictions;
        snap.cache_bytes = cache.bytes;
        snap.cache_stores = cache.stores;
        snap
    }
}

/// The serving engine; dropping it drains the workers.
pub struct PredictionService {
    pub(crate) shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    pool: Vec<std::thread::JoinHandle<()>>,
}

impl PredictionService {
    /// Starts the worker + precompute pools around a trained model.
    ///
    /// `profile` must be the profile the model was trained with (it fixes
    /// the encoding width and the served region/warmup lengths).
    pub fn start(model: ConcordePredictor, profile: ReproProfile, cfg: ServeConfig) -> Self {
        // Real-program workload ids (`riscv:<path>`) must resolve in every
        // embedding — wire requests, `--preload`, tests — so the front end
        // registers its prefix resolver whenever a service starts.
        concorde_riscv::install();
        let n_workers = cfg.effective_workers();
        let n_pool = match cfg.miss_policy {
            MissPolicy::AsyncPool => cfg.effective_precompute_workers(),
            MissPolicy::Inline => 0,
        };
        let qmlp = match cfg.model_encoding {
            ModelEncoding::Int8 => Some(model.quantized()),
            ModelEncoding::F32 => None,
        };
        let quant_sweep = Arc::new(SweepConfig::quantized());
        let quant_sweep_hash = sweep_content_hash(&quant_sweep);
        // Chaos hooks: an explicit plan from the config wins; otherwise the
        // environment may arm one (operators smoke-testing a deployment).
        let faults = cfg.fault_plan.clone().unwrap_or_else(|| {
            std::env::var("CONCORDE_FAULT_PLAN")
                .ok()
                .and_then(|spec| match FaultPlan::parse(&spec) {
                    Ok(plan) => Some(Arc::new(plan)),
                    Err(e) => {
                        eprintln!("ignoring CONCORDE_FAULT_PLAN: {e}");
                        None
                    }
                })
                .unwrap_or_default()
        });
        let shared = Arc::new(Shared {
            cache: ShardedStoreCache::new(cfg.effective_cache_shards(), cfg.cache_bytes),
            cfg,
            model,
            qmlp,
            profile,
            shards: (0..n_workers).map(|_| Shard::new()).collect(),
            queue_len: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
            slot_pool: Arc::new(SlotPool::default()),
            quant_sweep,
            quant_sweep_hash,
            inflight: Mutex::new(HashMap::new()),
            inflight_builds: AtomicUsize::new(0),
            pre_queue: Mutex::new(Vec::new()),
            pre_seq: AtomicU64::new(0),
            pre_notify: Condvar::new(),
            n_pool,
            build_ewma_us: AtomicU64::new(0),
            shed_cache: Mutex::new(HashMap::new()),
            metrics: Metrics::default(),
            faults,
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            pool_shutdown: AtomicBool::new(false),
            active_precomputes: AtomicUsize::new(0),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("concorde-serve-{i}"))
                    .spawn(move || supervise(&shared, false, || worker_loop(&shared, i)))
                    .expect("spawn serve worker")
            })
            .collect();
        let pool = (0..n_pool)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("concorde-precompute-{i}"))
                    .spawn(move || supervise(&shared, true, || precompute_loop(&shared)))
                    .expect("spawn precompute worker")
            })
            .collect();
        PredictionService {
            shared,
            workers,
            pool,
        }
    }

    /// Live metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// Full stats: metrics plus cache budget and per-shard occupancy.
    pub fn stats(&self) -> ServiceStats {
        service_stats(&self.shared)
    }

    /// Aggregate feature-store cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The engine configuration this service runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// The feature schema (version + named blocks) this service's model
    /// consumes, annotated with the miss-path arena encoding; served to
    /// clients as `{"cmd": "schema"}`.
    pub fn schema(&self) -> FeatureSchema {
        schema_of(&self.shared)
    }

    /// Seeds the feature-store cache with a prebuilt store, so queries
    /// against that region skip the analytic precompute from the first
    /// request on.
    pub fn preload(&self, key: FeatureKey, store: FeatureStore) {
        self.shared.cache.insert(key, Arc::new(store));
    }

    /// Memory-maps a `concorde precompute` artifact from `path` into the
    /// cache (zero-copy: the cached store's arenas point into the mapping,
    /// which is released when the store is evicted and unreferenced).
    ///
    /// # Errors
    ///
    /// I/O and format errors from [`StoreArtifact::map`]; a mismatch
    /// between the artifact's encoding and the served model's (a store built
    /// at a different encoding width would assemble misshapen vectors); or a
    /// sweep-scope mismatch that would make the artifact unreachable by any
    /// request key (preloading it would silently leave the server cold).
    pub fn preload_artifact(&self, path: &std::path::Path) -> std::io::Result<FeatureKey> {
        let artifact = StoreArtifact::map(path)?;
        let model_enc = self.shared.model.layout.encoding;
        if artifact.store.encoding() != model_enc {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "artifact encoding ({} levels) does not match the served model ({} levels)",
                    artifact.store.encoding().levels,
                    model_enc.levels
                ),
            ));
        }
        // Request keys embed the sweep hash the server computes per request,
        // so an artifact built for the wrong sweep scope can never be hit.
        let quantized_hash = sweep_content_hash(&SweepConfig::quantized());
        let is_quantized_artifact = artifact.key.sweep_hash == quantized_hash;
        match self.shared.cfg.sweep {
            SweepScope::Quantized if !is_quantized_artifact => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "artifact was not built for the quantized sweep this server runs; \
                     rebuild with `concorde precompute --sweep quantized`",
                ));
            }
            SweepScope::PerArch if is_quantized_artifact => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "artifact was built for the quantized sweep but this server runs \
                     per-arch sweeps (start it with `--sweep quantized`)",
                ));
            }
            _ => {}
        }
        // Opt-in paranoia (`CONCORDE_VERIFY_STORES=1`): re-verify the store
        // at insert time by round-tripping it through its own serialization
        // — touches every arena byte beyond what the load-time checksum
        // already proved.
        if concorde_core::cache::verify_stores_enabled() {
            concorde_core::cache::verify_store(&artifact.store).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("store verification failed (CONCORDE_VERIFY_STORES=1): {e}"),
                )
            })?;
        }
        // A dynamic-workload artifact (e.g. `riscv:<path>`) registers its
        // provider now, in operator context, and *pins* it: requests
        // against the preloaded region must pass admission even on servers
        // that refuse on-demand resolution of client-supplied ids, and a
        // preload whose workload can't resolve on this host would otherwise
        // turn every matching request into an error — fail fast instead.
        match concorde_trace::resolve_workload(&artifact.key.workload) {
            Ok(concorde_trace::ResolvedWorkload::Dynamic(p)) => {
                concorde_trace::register_provider(p);
            }
            Ok(concorde_trace::ResolvedWorkload::Suite(_)) => {}
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "artifact workload `{}` is not resolvable on this host: {e}",
                        artifact.key.workload
                    ),
                ));
            }
        }
        let key = artifact.key.clone();
        self.preload(artifact.key, artifact.store);
        Ok(key)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of dedicated precompute-pool threads.
    pub fn precompute_workers(&self) -> usize {
        self.pool.len()
    }

    /// An in-process client handle (cheap to clone, independent lifetime).
    pub fn client(&self) -> crate::Client {
        crate::Client::new(Arc::clone(&self.shared))
    }

    /// Begins a graceful drain: [`PredictionService::serve_tcp`] stops
    /// accepting, open connections close once their in-flight requests are
    /// answered, and `/readyz` flips to 503. The engine itself keeps
    /// serving (queues flush, parked jobs are answered) until the service
    /// is dropped. Idempotent.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// True once [`PredictionService::begin_drain`] (or the wire
    /// `{"cmd":"drain"}` / a SIGTERM handler) has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        // Phase 1: stop accepting submissions and drain the batch workers.
        // They only exit once the queue is empty AND no precompute is in
        // flight, so every parked job is re-enqueued and answered first —
        // the pool must still be alive to land those stores.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for s in &self.shared.shards {
            s.cv.notify_all();
        }
        self.shared.pre_notify.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // A submitter that passed the shutdown check just before the flag
        // landed may have pushed after the last worker's final empty check;
        // answer those jobs instead of stranding their waiters. No new
        // builds can register (the workers are gone), so nothing refills
        // the shards after this sweep.
        for shard in &self.shared.shards {
            loop {
                let job = shard
                    .q
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                let Some(job) = job else { break };
                self.shared.queue_len.fetch_sub(1, Ordering::SeqCst);
                let us = job.enqueued.elapsed().as_micros() as u64;
                respond(
                    &self.shared,
                    &job,
                    PredictResponse::err(job.req.id, ServeError::ShuttingDown.to_string(), us),
                );
            }
        }
        // Phase 2: with the workers gone nothing can queue new builds;
        // release the pool.
        self.shared.pool_shutdown.store(true, Ordering::SeqCst);
        self.shared.pre_notify.notify_all();
        for w in self.pool.drain(..) {
            let _ = w.join();
        }
    }
}

/// Builds a [`Job`] around `req`, resolving its effective deadline (the
/// request's own `deadline_ms`, else its class's SLO, else the server-wide
/// miss SLO — the EDF key the precompute pool orders builds by).
fn make_job(shared: &Shared, req: PredictRequest, tx: ResponseTx) -> Job {
    let enqueued = Instant::now();
    let deadline = req
        .deadline_ms
        .map(Duration::from_millis)
        .or_else(|| shared.cfg.class_slo.get(req.class))
        .or(shared.cfg.miss_slo)
        .map(|d| enqueued + d);
    Job {
        req,
        enqueued,
        tx,
        parked: false,
        deadline,
        upgrade: false,
    }
}

/// Reserves `n` queue slots against the bounded capacity (all-or-nothing,
/// so a wire batch enqueues atomically or not at all).
fn reserve(shared: &Shared, n: usize) -> Result<(), ServeError> {
    // Racing the flag (instead of checking under a global queue lock, which
    // no longer exists) can strand at most the handful of jobs pushed in the
    // window between the last worker's final empty check and the flag
    // landing — the service `Drop` sweeps the shards and answers those.
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    shared
        .queue_len
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |len| {
            (len + n <= shared.cfg.queue_capacity).then_some(len + n)
        })
        .map_err(|_| {
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            ServeError::QueueFull
        })?;
    Ok(())
}

/// Publishes the depth gauge and wakes workers after `n` jobs landed on
/// shard `idx`. A batch bigger than one worker's `max_batch` also pokes the
/// other shards so their (possibly sleeping) workers come steal the spill.
fn notify_enqueued(shared: &Shared, idx: usize, n: usize) {
    let depth = shared.queue_len.load(Ordering::SeqCst);
    shared.metrics.queue_depth.store(depth, Ordering::Relaxed);
    shared
        .metrics
        .max_queue_depth
        .fetch_max(depth, Ordering::Relaxed);
    shared.shards[idx].cv.notify_all();
    if n > shared.cfg.max_batch {
        for (i, s) in shared.shards.iter().enumerate() {
            if i != idx {
                s.cv.notify_one();
            }
        }
    }
}

/// Enqueues one job on the next round-robin shard. Capacity must already be
/// reserved.
fn push_one(shared: &Shared, job: Job) {
    let idx = shared.rr.fetch_add(1, Ordering::Relaxed) % shared.shards.len();
    shared.shards[idx]
        .q
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push_back(job);
    shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
    notify_enqueued(shared, idx, 1);
}

/// Submit via the legacy per-request mpsc channel — the compatibility shim
/// behind [`crate::Client::submit`], whose public signature returns an
/// `mpsc::Receiver`. The warm wire path uses [`submit_slot`]/[`submit_many`]
/// instead.
pub(crate) fn submit(
    shared: &Shared,
    req: PredictRequest,
) -> Result<mpsc::Receiver<PredictResponse>, ServeError> {
    let (tx, rx) = mpsc::channel();
    reserve(shared, 1)?;
    push_one(shared, make_job(shared, req, ResponseTx::Mpsc(tx)));
    Ok(rx)
}

/// Submit against a recycled response slot (no per-request allocation once
/// the slab is warm). Dropping the returned receiver releases the slot.
pub(crate) fn submit_slot(
    shared: &Shared,
    req: PredictRequest,
) -> Result<SlotReceiver, ServeError> {
    reserve(shared, 1)?;
    let rx = shared.slot_pool.acquire();
    push_one(shared, make_job(shared, req, ResponseTx::Slot(rx.sender())));
    Ok(rx)
}

/// Enqueues a whole wire batch under **one** shard lock: one capacity
/// reservation, one lock acquisition, one wakeup — instead of N global
/// queue round-trips. All-or-nothing: on `Err` nothing was enqueued and
/// `reqs` is untouched (callers fall back to per-request submission, which
/// makes progress even when the batch exceeds the whole queue capacity).
///
/// On success `reqs` is drained; a slot receiver per request is appended to
/// `rxs` in request order. `jobs` is caller-owned scratch so the warm path
/// reuses its capacity.
pub(crate) fn submit_many(
    shared: &Shared,
    reqs: &mut Vec<PredictRequest>,
    rxs: &mut Vec<SlotReceiver>,
    jobs: &mut Vec<Job>,
) -> Result<(), ServeError> {
    let n = reqs.len();
    if n == 0 {
        return Ok(());
    }
    reserve(shared, n)?;
    jobs.clear();
    for req in reqs.drain(..) {
        let rx = shared.slot_pool.acquire();
        jobs.push(make_job(shared, req, ResponseTx::Slot(rx.sender())));
        rxs.push(rx);
    }
    let idx = shared.rr.fetch_add(1, Ordering::Relaxed) % shared.shards.len();
    shared.shards[idx]
        .q
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .extend(jobs.drain(..));
    shared
        .metrics
        .submitted
        .fetch_add(n as u64, Ordering::Relaxed);
    notify_enqueued(shared, idx, n);
    Ok(())
}

pub(crate) fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    shared.snapshot()
}

pub(crate) fn service_stats(shared: &Shared) -> ServiceStats {
    let totals = shared.cache.stats();
    ServiceStats {
        metrics: shared.snapshot_with(&totals),
        cache: CacheReport {
            budget_bytes: shared.cache.byte_budget(),
            shard_count: shared.cache.shard_count(),
            totals,
            per_shard: shared.cache.shard_stats(),
        },
        workers: shared.cfg.effective_workers(),
        precompute_workers: match shared.cfg.miss_policy {
            MissPolicy::AsyncPool => shared.cfg.effective_precompute_workers(),
            MissPolicy::Inline => 0,
        },
        max_connections: shared.cfg.max_connections.max(1),
        store_encoding: Some(shared.cfg.store_encoding),
        miss_slo_ms: shared.cfg.miss_slo.map(|d| d.as_millis() as u64),
        model_encoding: Some(shared.cfg.model_encoding),
        kernel: Some(concorde_ml::kernel_name().to_string()),
    }
}

pub(crate) fn schema_of(shared: &Shared) -> FeatureSchema {
    shared
        .model
        .layout
        .schema()
        .with_arena_encoding(shared.cfg.store_encoding)
}

/// Renders the full engine state as one Prometheus text-exposition document
/// — the `GET /metrics` body and the `{"cmd":"metrics","format":
/// "prometheus"}` reply. Reads the same atomics/locks as the JSON snapshot,
/// so the two report the same world.
pub(crate) fn prometheus_text(shared: &Shared) -> String {
    let m = &shared.metrics;
    let snap = shared.snapshot();
    let per_shard = shared.cache.shard_stats();
    let class_label = |c: RequestClass| vec![("class", c.name().to_string())];
    let shard_label = |s: usize| vec![("shard", s.to_string())];
    let global = Vec::new;

    let mut w = PromWriter::new();
    w.gauge(
        "concorde_build_info",
        "Constant 1; labels carry the served feature-schema version, arena/model encodings, and active MLP kernel.",
        &[(
            vec![
                ("schema_version", SCHEMA_VERSION.to_string()),
                (
                    "encoding",
                    format!("{:?}", shared.cfg.store_encoding).to_lowercase(),
                ),
                (
                    "model_encoding",
                    shared.cfg.model_encoding.name().to_string(),
                ),
                ("kernel", concorde_ml::kernel_name().to_string()),
            ],
            1.0,
        )],
    );
    w.counter(
        "concorde_requests_submitted_total",
        "Requests accepted into the queue.",
        &[(global(), snap.submitted)],
    );
    w.counter(
        "concorde_requests_rejected_total",
        "Submissions rejected for a full queue.",
        &[(global(), snap.rejected)],
    );
    let responses: Vec<_> = RequestClass::ALL
        .iter()
        .map(|c| (class_label(*c), m.latency[c.index()].snapshot().count))
        .collect();
    w.counter(
        "concorde_responses_total",
        "Responses delivered (success, shed, or error), by request class.",
        &responses,
    );
    w.counter(
        "concorde_errors_total",
        "Error responses among the completed ones.",
        &[(global(), snap.errored)],
    );
    let shed: Vec<_> = RequestClass::ALL
        .iter()
        .map(|c| (class_label(*c), m.shed[c.index()].load(Ordering::Relaxed)))
        .collect();
    w.counter(
        "concorde_shed_total",
        "Cache-miss requests answered with the degraded analytic min-bound, by request class.",
        &shed,
    );
    w.counter(
        "concorde_upgrades_total",
        "Exact-answer upgrade lines pushed to notify-requesting shed clients.",
        &[(global(), snap.upgrades)],
    );
    w.counter(
        "concorde_schema_mismatch_total",
        "Requests rejected for pinning a schema_version the server does not speak.",
        &[(global(), snap.schema_mismatches)],
    );
    w.counter(
        "concorde_coalesced_total",
        "Requests that joined an already in-flight precompute for their key.",
        &[(global(), snap.coalesced)],
    );
    w.counter(
        "concorde_precomputes_total",
        "Feature-store builds executed (pool or inline).",
        &[(global(), snap.precomputes)],
    );
    w.counter(
        "concorde_shed_build_skips_total",
        "Speculative builds skipped past the backstop backlog.",
        &[(global(), snap.shed_build_skips)],
    );
    w.counter(
        "concorde_batches_total",
        "Micro-batches executed.",
        &[(global(), snap.batches)],
    );
    w.counter(
        "concorde_busy_rejected_total",
        "TCP connections turned away with a busy error.",
        &[(global(), snap.busy_rejected)],
    );
    w.counter(
        "concorde_worker_panics_total",
        "Panics caught by worker/pool unwind guards; affected jobs were answered with typed internal errors.",
        &[(global(), snap.worker_panics)],
    );
    w.counter(
        "concorde_worker_restarts_total",
        "Worker/pool loop restarts by the panic supervisor.",
        &[(global(), snap.worker_restarts)],
    );
    w.gauge(
        "concorde_draining",
        "1 while the server is draining (stopped accepting, flushing in-flight work), else 0.",
        &[(
            global(),
            if shared.draining.load(Ordering::SeqCst) {
                1.0
            } else {
                0.0
            },
        )],
    );
    let hits: Vec<_> = per_shard
        .iter()
        .map(|s| (shard_label(s.shard), s.hits))
        .collect();
    w.counter(
        "concorde_cache_hits_total",
        "Feature-store cache lookups that found a store, by shard.",
        &hits,
    );
    let misses: Vec<_> = per_shard
        .iter()
        .map(|s| (shard_label(s.shard), s.misses))
        .collect();
    w.counter(
        "concorde_cache_misses_total",
        "Feature-store cache lookups that did not, by shard.",
        &misses,
    );
    let evictions: Vec<_> = per_shard
        .iter()
        .map(|s| (shard_label(s.shard), s.evictions))
        .collect();
    w.counter(
        "concorde_cache_evictions_total",
        "Stores evicted to stay within the byte budget, by shard.",
        &evictions,
    );
    let bytes: Vec<_> = per_shard
        .iter()
        .map(|s| (shard_label(s.shard), s.bytes as f64))
        .collect();
    w.gauge(
        "concorde_cache_bytes",
        "Resident cache bytes, by shard.",
        &bytes,
    );
    let stores: Vec<_> = per_shard
        .iter()
        .map(|s| (shard_label(s.shard), s.stores as f64))
        .collect();
    w.gauge(
        "concorde_cache_stores",
        "Resident cached stores, by shard.",
        &stores,
    );
    w.gauge(
        "concorde_queue_depth",
        "Current request-queue depth.",
        &[(global(), snap.queue_depth as f64)],
    );
    w.gauge(
        "concorde_queue_depth_max",
        "High-water request-queue depth.",
        &[(global(), snap.max_queue_depth as f64)],
    );
    w.gauge(
        "concorde_parked_requests",
        "Requests parked awaiting an in-flight precompute.",
        &[(global(), snap.parked as f64)],
    );
    w.gauge(
        "concorde_miss_backlog",
        "Builds waiting in the precompute-pool queue.",
        &[(global(), snap.miss_backlog as f64)],
    );
    w.gauge(
        "concorde_inflight_builds",
        "Precomputes currently queued or running.",
        &[(global(), snap.inflight_builds as f64)],
    );
    w.gauge(
        "concorde_active_connections",
        "Currently open TCP connections.",
        &[(global(), snap.active_connections as f64)],
    );
    w.gauge(
        "concorde_build_ewma_seconds",
        "Observed per-build latency EWMA (the shed decision's multiplier).",
        &[(global(), snap.build_ewma_us as f64 / 1e6)],
    );
    let latency: Vec<_> = RequestClass::ALL
        .iter()
        .map(|c| (class_label(*c), m.latency[c.index()].snapshot()))
        .collect();
    w.histogram(
        "concorde_request_latency_seconds",
        "End-to-end latency, enqueue to response, by request class.",
        &latency,
    );
    let queue_wait: Vec<_> = RequestClass::ALL
        .iter()
        .map(|c| (class_label(*c), m.queue_wait[c.index()].snapshot()))
        .collect();
    w.histogram(
        "concorde_queue_wait_seconds",
        "Enqueue to batch-collection wait (first pass), by request class.",
        &queue_wait,
    );
    w.histogram(
        "concorde_batch_size",
        "Requests per executed micro-batch.",
        &[(global(), m.batch_size.snapshot())],
    );
    w.histogram(
        "concorde_store_build_seconds",
        "Feature-store build latency (pool and inline builds).",
        &[(global(), m.store_build.snapshot())],
    );
    w.finish()
}

/// True once every shutdown-drain obligation is met. Read order matters:
/// [`requeue_parked`] pushes its jobs (growing `queue_len`) *before*
/// releasing the build slot (`inflight_builds -= 1`), so a thread that
/// observes zero in-flight builds first and then an empty queue cannot have
/// raced past a requeue — if all decrements had landed, so had their pushes,
/// and the length read (sequenced after) would have seen them.
fn drained_for_shutdown(shared: &Shared) -> bool {
    shared.shutdown.load(Ordering::SeqCst)
        && shared.inflight_builds.load(Ordering::SeqCst) == 0
        && shared.queue_len.load(Ordering::SeqCst) == 0
}

/// Pops up to `max - batch.len()` jobs off a locked shard queue, keeping the
/// global length counter and depth gauge in step.
fn drain_locked(shared: &Shared, q: &mut VecDeque<Job>, batch: &mut Vec<Job>, max: usize) {
    let mut taken = 0usize;
    while batch.len() < max {
        match q.pop_front() {
            Some(j) => {
                batch.push(j);
                taken += 1;
            }
            None => break,
        }
    }
    if taken > 0 {
        let after = shared.queue_len.fetch_sub(taken, Ordering::SeqCst) - taken;
        shared.metrics.queue_depth.store(after, Ordering::Relaxed);
    }
}

/// Collects one micro-batch into `batch` (cleared first): waits on the
/// worker's own shard, drains it, steals front-first from the other shards
/// when it comes up empty, then holds the batch open until full or
/// [`ServeConfig::batch_deadline`] for stragglers.
///
/// Leaves `batch` empty only when there was nothing to take — at shutdown
/// (the worker loop re-checks [`drained_for_shutdown`] before exiting, so a
/// parked job awaiting its store can never strand) or when a steal raced
/// another worker to the same jobs.
fn collect_batch(shared: &Shared, wid: usize, batch: &mut Vec<Job>) {
    batch.clear();
    let nsh = shared.shards.len();
    let my = &shared.shards[wid % nsh];
    {
        let mut q = my.q.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !q.is_empty() {
                break;
            }
            if shared.queue_len.load(Ordering::SeqCst) > 0 {
                break; // work on some other shard: go steal it
            }
            if drained_for_shutdown(shared) {
                return;
            }
            // Timed wait: robust against lost wakeups during shutdown and
            // while awaiting re-enqueued parked jobs.
            let (qq, _) = my
                .cv
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            q = qq;
        }
        drain_locked(shared, &mut q, batch, shared.cfg.max_batch);
    }
    if batch.is_empty() {
        for off in 1..nsh {
            let sh = &shared.shards[(wid + off) % nsh];
            let mut q = sh.q.lock().unwrap_or_else(|e| e.into_inner());
            drain_locked(shared, &mut q, batch, shared.cfg.max_batch);
            drop(q);
            if !batch.is_empty() {
                break;
            }
        }
        if batch.is_empty() {
            return;
        }
    }
    if batch.len() >= shared.cfg.max_batch || shared.shutdown.load(Ordering::SeqCst) {
        return;
    }
    // Straggler window: keep the batch open on this worker's own shard until
    // it fills or the deadline passes (flush-on-size-or-deadline).
    let deadline = Instant::now() + shared.cfg.batch_deadline;
    let mut q = my.q.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        drain_locked(shared, &mut q, batch, shared.cfg.max_batch);
        if batch.len() >= shared.cfg.max_batch || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let (qq, timeout) = my
            .cv
            .wait_timeout(q, deadline - now)
            .unwrap_or_else(|e| e.into_inner());
        q = qq;
        if timeout.timed_out() && q.is_empty() {
            return;
        }
    }
}

/// Per-worker reusable buffers: batch/group staging plus the full
/// prediction scratch ([`PredictScratch`]: MLP activations, quantized
/// feature buffer, assembly plan, dedup tables). Warm after the first
/// batch, so steady-state serving allocates nothing per request.
#[derive(Default)]
struct WorkerScratch {
    predict: PredictScratch,
    batch: Vec<Job>,
    groups: Vec<Group>,
    group_idx: HashMap<FeatureKey, usize>,
    /// Recycled per-group job vectors (capacity-retaining).
    spare_jobs: Vec<ArchJobs>,
    archs: Vec<MicroArch>,
    outs: Vec<f64>,
    /// Per-arch sweep memo for [`SweepScope::PerArch`]: repeated
    /// microarchitectures reuse the built `SweepConfig` + content hash
    /// instead of re-allocating the grid per request (linear scan —
    /// `MicroArch` is `PartialEq`-only — over a small FIFO window).
    sweep_memo: Vec<(MicroArch, Arc<SweepConfig>, u64)>,
}

/// Entries kept in [`WorkerScratch::sweep_memo`] before the oldest is
/// evicted. Covers typical steady-state arch working sets; misses just pay
/// the old build-per-request cost.
const SWEEP_MEMO_CAP: usize = 32;

/// Thread supervisor: runs `body` (a worker or precompute loop) until it
/// returns cleanly, restarting it when a panic escapes the per-job unwind
/// guards. The restarted loop starts with fresh scratch state; the shared
/// engine state holds no lock across a loop iteration boundary, so a
/// restart never observes a poisoned invariant. `pool` selects which
/// shutdown flag ends the supervision (workers drain before the pool).
fn supervise(shared: &Shared, pool: bool, body: impl Fn()) {
    loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&body)) {
            Ok(()) => return,
            Err(_) => {
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                let stop = if pool {
                    &shared.pool_shutdown
                } else {
                    &shared.shutdown
                };
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                shared
                    .metrics
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn worker_loop(shared: &Shared, wid: usize) {
    let mut scratch = WorkerScratch::default();
    loop {
        let mut batch = std::mem::take(&mut scratch.batch);
        collect_batch(shared, wid, &mut batch);
        if batch.is_empty() {
            scratch.batch = batch;
            if drained_for_shutdown(shared) {
                return;
            }
            continue;
        }
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .batch_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared.metrics.batch_size.observe(batch.len() as f64);
        process_batch(shared, &mut batch, &mut scratch);
        scratch.batch = batch;
    }
}

/// A missed group's jobs with their resolved architectures.
type ArchJobs = Vec<(Job, MicroArch)>;

/// A batch group: jobs sharing one feature store. The sweep is shared, not
/// owned: under [`SweepScope::Quantized`] every group aliases the one
/// startup-built config instead of re-deriving its grids per batch.
struct Group {
    key: FeatureKey,
    sweep: Arc<SweepConfig>,
    jobs: ArchJobs,
}

/// Admission-time validation of a client-supplied workload id.
///
/// Suite ids and workloads already registered in-process (preloaded
/// artifacts, CLI operands, earlier resolutions) pass without touching the
/// resolver — no I/O, no execution. Unseen dynamic ids resolve on demand
/// only when the operator opted in with [`ServeConfig::dynamic_root`], and
/// then under three restrictions that keep remote clients from driving the
/// resolver: the ELF path must canonicalize inside the root, the `@budget`
/// suffix is capped at [`MAX_WIRE_RISCV_BUDGET`], and every
/// filesystem-dependent failure (missing file, permissions, path escape,
/// malformed ELF) comes back as one uniform message — the detail goes to
/// the server log — so error text cannot distinguish what exists where.
fn validate_workload(shared: &Shared, id: &str) -> Result<(), String> {
    if concorde_trace::resolve_registered(id).is_some() {
        return Ok(());
    }
    let Some(root) = shared.cfg.dynamic_root.as_deref() else {
        return Err(format!(
            "unknown workload `{id}` (on-demand dynamic resolution is disabled; \
             preload the workload or start the server with --dynamic-workloads)"
        ));
    };
    // Syntax failures (wrong prefix, empty path, malformed budget) derive
    // from the id alone and are safe to echo verbatim.
    let (path, budget) = concorde_riscv::parse_workload_id(id)?;
    if budget > MAX_WIRE_RISCV_BUDGET {
        return Err(format!(
            "workload `{id}`: instruction budget {budget} exceeds the served \
             maximum {MAX_WIRE_RISCV_BUDGET}"
        ));
    }
    let refused = || {
        format!(
            "workload `{id}` is not servable (dynamic workloads are restricted \
             to the server's --dynamic-workloads root)"
        )
    };
    let root = std::fs::canonicalize(root).map_err(|e| {
        eprintln!("[serve] dynamic-workloads root unusable: {e}");
        refused()
    })?;
    match std::fs::canonicalize(path) {
        Ok(p) if p.starts_with(&root) => {}
        Ok(p) => {
            eprintln!(
                "[serve] refused dynamic workload `{id}`: {} escapes the root {}",
                p.display(),
                root.display()
            );
            return Err(refused());
        }
        Err(e) => {
            eprintln!("[serve] refused dynamic workload `{id}`: {e}");
            return Err(refused());
        }
    }
    concorde_trace::resolve_workload(id).map(drop).map_err(|e| {
        eprintln!("[serve] dynamic workload `{id}` failed to resolve: {e}");
        refused()
    })
}

fn respond(shared: &Shared, job: &Job, resp: PredictResponse) {
    if resp.is_upgrade() {
        // The job's primary (shed) response was already counted; the
        // upgrade is a push, not a completion — only its own counter moves.
        shared.metrics.upgrades.fetch_add(1, Ordering::Relaxed);
        job.tx.send(resp);
        return;
    }
    if resp.error.is_some() {
        shared.metrics.errored.fetch_add(1, Ordering::Relaxed);
    }
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .observe_latency(job.req.class, job.enqueued.elapsed().as_micros() as u64);
    job.tx.send(resp);
}

fn process_batch(shared: &Shared, batch: &mut Vec<Job>, scratch: &mut WorkerScratch) {
    // Group by feature-store key, resolving architectures up front. The
    // group table and index live in the worker scratch: cleared each batch,
    // capacity (and the recycled per-group job vectors) retained.
    let mut groups = std::mem::take(&mut scratch.groups);
    for job in batch.drain(..) {
        // First pass only: a re-enqueued parked job's wait is park time, not
        // queue time, and is visible in end-to-end latency instead.
        if !job.parked {
            shared.metrics.queue_wait[job.req.class.index()]
                .observe(job.enqueued.elapsed().as_secs_f64());
        }
        // Schema pinning: a client that demands a specific feature-schema
        // version gets a typed refusal, never a silently different layout.
        if let Some(v) = job.req.schema_version {
            if v != SCHEMA_VERSION {
                shared
                    .metrics
                    .schema_mismatches
                    .fetch_add(1, Ordering::Relaxed);
                let id = job.req.id;
                let us = job.enqueued.elapsed().as_micros() as u64;
                respond(
                    shared,
                    &job,
                    PredictResponse::schema_mismatch(id, v, SCHEMA_VERSION, us),
                );
                continue;
            }
        }
        let arch = match job.req.arch.resolve() {
            Ok(a) => a,
            Err(msg) => {
                let id = job.req.id;
                let us = job.enqueued.elapsed().as_micros() as u64;
                respond(shared, &job, PredictResponse::err(id, msg, us));
                continue;
            }
        };
        // Suite ids stay on the lock-free catalog path; registered dynamic
        // ids pass under a read lock. Unseen `riscv:` ids run their
        // resolver here — opt-in, path-confined, budget-capped (see
        // `validate_workload`) — on this worker thread; the per-id build
        // latch in the registry keeps one slow ELF from stalling
        // resolutions of other ids on other workers.
        if let Err(msg) = validate_workload(shared, &job.req.workload) {
            let id = job.req.id;
            let us = job.enqueued.elapsed().as_micros() as u64;
            respond(shared, &job, PredictResponse::err(id, msg, us));
            continue;
        }
        // Quantized scope (the design-space-exploration shape) reuses the
        // startup-built sweep + hash: no grid rebuild, no re-hash per job.
        let (sweep, sweep_hash) = match shared.cfg.sweep {
            SweepScope::Quantized => (Arc::clone(&shared.quant_sweep), shared.quant_sweep_hash),
            SweepScope::PerArch => {
                if let Some(i) = scratch.sweep_memo.iter().position(|(a, _, _)| *a == arch) {
                    let (_, s, h) = &scratch.sweep_memo[i];
                    (Arc::clone(s), *h)
                } else {
                    let s = Arc::new(SweepConfig::for_arch(&arch));
                    let h = sweep_content_hash(&s);
                    if scratch.sweep_memo.len() >= SWEEP_MEMO_CAP {
                        scratch.sweep_memo.remove(0);
                    }
                    scratch.sweep_memo.push((arch, Arc::clone(&s), h));
                    (s, h)
                }
            }
        };
        // Bound wire-controlled work: an unchecked `len` would let one
        // request allocate/generate gigabytes of trace (an allocation abort
        // is not catchable by the worker's unwind guard).
        if job.req.len > MAX_REGION_LEN {
            let id = job.req.id;
            let msg = format!(
                "region len {} exceeds the served maximum {MAX_REGION_LEN}",
                job.req.len
            );
            let us = job.enqueued.elapsed().as_micros() as u64;
            respond(shared, &job, PredictResponse::err(id, msg, us));
            continue;
        }
        let region_len = if job.req.len > 0 {
            job.req.len
        } else {
            shared.profile.region_len as u32
        };
        let key = FeatureKey {
            workload: job.req.workload.clone(),
            trace: job.req.trace,
            start: job.req.start,
            region_len,
            sweep_hash,
        };
        match scratch.group_idx.get(&key) {
            Some(&g) => groups[g].jobs.push((job, arch)),
            None => {
                scratch.group_idx.insert(key.clone(), groups.len());
                let mut jobs = scratch.spare_jobs.pop().unwrap_or_default();
                jobs.push((job, arch));
                groups.push(Group { key, sweep, jobs });
            }
        }
    }

    for group in &mut groups {
        run_group(shared, group, scratch);
    }
    for group in groups.drain(..) {
        let mut jobs = group.jobs;
        jobs.clear();
        scratch.spare_jobs.push(jobs);
    }
    scratch.groups = groups;
    scratch.group_idx.clear();
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "prediction panicked".to_string())
}

/// Counts a found-in-cache group toward `cache_hits`, unless the group is
/// purely re-enqueued parked jobs — their miss was already counted when they
/// registered the build, so counting the post-build "hit" too would inflate
/// `cache_hit_rate` (a fully cold workload would report 50%).
fn note_group_hit(shared: &Shared, jobs: &[(Job, MicroArch)]) {
    if jobs.iter().any(|(j, _)| !j.parked) {
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
}

fn run_group(shared: &Shared, group: &mut Group, scratch: &mut WorkerScratch) {
    if matches!(shared.cfg.miss_policy, MissPolicy::AsyncPool) {
        match shared.cache.get(&group.key) {
            Some(store) => {
                note_group_hit(shared, &group.jobs);
                eval_group(shared, &store, &group.jobs, scratch, true);
                group.jobs.clear();
            }
            // Miss: park the whole group on the key's single-flight entry
            // and move on — this worker never blocks on the build. The cold
            // path owns its allocations (key clone is inline, the job list
            // moves into the registry).
            None => {
                let key = group.key.clone();
                let sweep = Arc::clone(&group.sweep);
                let jobs = std::mem::take(&mut group.jobs);
                park_group(shared, key, sweep, jobs, scratch);
            }
        }
        return;
    }
    let key = &group.key;
    let sweep = &group.sweep;
    let jobs = &group.jobs;

    // Inline policy: fetch-or-build on this worker (the baseline path).
    // A panic anywhere in the analytic stage must not kill the worker
    // thread (a poisoned request could otherwise shrink the pool one
    // request at a time until the service wedges): isolate the build,
    // answer the group's requests with an error, and keep serving.
    // Evaluation itself is guarded inside `eval_group`.
    let (store, was_cached) = match shared.cache.get(key) {
        Some(s) => {
            shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            (s, true)
        }
        None => {
            shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Arc::new(precompute_store(shared, key, sweep))
            }));
            match outcome {
                Ok(store) => {
                    shared
                        .metrics
                        .store_build
                        .observe(t0.elapsed().as_secs_f64());
                    shared.metrics.precomputes.fetch_add(1, Ordering::Relaxed);
                    shared.cache.insert(key.clone(), Arc::clone(&store));
                    (store, false)
                }
                Err(panic) => {
                    shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                    let msg = panic_message(panic);
                    for (job, _) in jobs {
                        let us = job.enqueued.elapsed().as_micros() as u64;
                        respond(shared, job, PredictResponse::internal(job.req.id, &msg, us));
                    }
                    group.jobs.clear();
                    return;
                }
            }
        }
    };
    eval_group(shared, &store, jobs, scratch, was_cached);
    group.jobs.clear();
}

/// One batched forward pass for a group whose store is in hand, with the
/// worker's unwind guard around the evaluation.
fn eval_group(
    shared: &Shared,
    store: &Arc<FeatureStore>,
    jobs: &[(Job, MicroArch)],
    scratch: &mut WorkerScratch,
    was_cached: bool,
) {
    let archs = &mut scratch.archs;
    archs.clear();
    archs.extend(jobs.iter().map(|(_, a)| *a));
    let predict = &mut scratch.predict;
    let outs = &mut scratch.outs;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.faults.on_eval();
        match &shared.qmlp {
            // Int8 serving: fused dequantize-assembly — the store's encoded
            // blocks feed the quantized first layer directly, never
            // materializing the f32 feature vector. Both paths dedup
            // repeated architectures and walk the arena in grid order
            // (batched assembly), writing into the reused output buffer.
            Some(qmlp) => shared
                .model
                .predict_batch_quantized_into(qmlp, store, archs, predict, outs),
            None => shared.model.predict_batch_into(store, archs, predict, outs),
        }
    }));
    match outcome {
        Ok(()) => {
            for ((job, _), &cpi) in jobs.iter().zip(scratch.outs.iter()) {
                let us = job.enqueued.elapsed().as_micros() as u64;
                let resp = if job.upgrade {
                    // This job was already answered with the shed min-bound;
                    // the exact CPI goes out as the promised follow-up line.
                    PredictResponse::upgrade(job.req.id, cpi, us)
                } else {
                    // A job that parked on this store's build sees a "hit"
                    // only because its own miss triggered the build — report
                    // it as the precompute it was.
                    PredictResponse::ok(job.req.id, cpi, was_cached && !job.parked, us)
                };
                respond(shared, job, resp);
            }
        }
        Err(panic) => {
            shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            let msg = panic_message(panic);
            for (job, _) in jobs {
                // An upgrade job already holds a (shed) answer: failing to
                // improve on it is not an error worth a second reply line.
                if job.upgrade {
                    continue;
                }
                let us = job.enqueued.elapsed().as_micros() as u64;
                respond(shared, job, PredictResponse::internal(job.req.id, &msg, us));
            }
        }
    }
}

/// Splits a missed group into the jobs that park (wait for the exact store)
/// and the jobs that shed (answer the analytic min-bound now), per
/// [`shed_decision`]. `registers_build` adds the group's own build to the
/// backlog estimate when no in-flight entry exists yet.
fn split_shed(shared: &Shared, jobs: ArchJobs, registers_build: bool) -> (ArchJobs, ArchJobs) {
    let slo_us = shared.cfg.miss_slo.map(|d| d.as_micros() as u64);
    // Cheap early-out: shedding entirely unconfigured (the common case) —
    // skip the per-job scan and preserve the pre-SLO behavior exactly.
    if slo_us.is_none()
        && shared.cfg.class_slo.is_empty()
        && jobs.iter().all(|(j, _)| j.req.deadline_ms.is_none())
    {
        return (jobs, Vec::new());
    }
    let ewma_us = shared.build_ewma_us.load(Ordering::Relaxed);
    let backlog = shared.inflight_builds.load(Ordering::SeqCst) + usize::from(registers_build);
    let per_worker = backlog.div_ceil(shared.n_pool.max(1));
    let mut parked = Vec::new();
    let mut shed = Vec::new();
    for (job, arch) in jobs {
        // A re-parked upgrade job already holds its shed answer; shedding
        // it again would send a duplicate — it always waits for the store.
        let deadline_us = job.deadline_us(&shared.cfg.class_slo);
        if !job.upgrade && shed_decision(per_worker, ewma_us, slo_us, deadline_us) {
            shed.push((job, arch));
        } else {
            parked.push((job, arch));
        }
    }
    (parked, shed)
}

/// Answers shed jobs with the analytic min-bound CPI for their region —
/// computed directly (no [`FeatureStore`] build) via [`MinBoundEstimator`],
/// flagged `approx: true` so clients can tell the degraded answer from an
/// exact one. The exact build these jobs declined to wait for keeps running
/// on the pool (unless the speculative backstop skipped it — see
/// `park_group`).
///
/// The bound is deterministic per `(key, arch)`, so answers are memoized in
/// [`Shared::shed_cache`]: a storm of repeated shed requests on one cold
/// key pays the trace generation + analysis once, not per request — the
/// worker thread computing here is a hit-path worker, and N× recomputation
/// would reintroduce the stall shedding exists to avoid.
///
/// Returns the answered `notify: true` jobs, flagged for upgrade — the
/// caller parks them back on the key's in-flight build
/// ([`park_for_upgrade`]) so the exact CPI is pushed when the store lands.
fn answer_shed(shared: &Shared, key: &FeatureKey, jobs: ArchJobs) -> Vec<Job> {
    for (job, _) in &jobs {
        shared.metrics.shed[job.req.class.index()].fetch_add(1, Ordering::Relaxed);
    }
    let mut answers: Vec<Option<f64>> = {
        let sc = shared.shed_cache.lock().unwrap_or_else(|e| e.into_inner());
        let entry = sc.get(key);
        jobs.iter()
            .map(|(_, arch)| {
                entry.and_then(|v| v.iter().find(|(a, _)| a == arch).map(|(_, cpi)| *cpi))
            })
            .collect()
    };
    // One entry per *distinct* uncached architecture: a batched storm of
    // identical requests forms one group, and the analytic models must run
    // once for it, not once per job.
    let mut missing: Vec<(Vec<usize>, MicroArch)> = Vec::new();
    for (i, answer) in answers.iter().enumerate() {
        if answer.is_some() {
            continue;
        }
        let arch = jobs[i].1;
        match missing.iter_mut().find(|(_, a)| *a == arch) {
            Some((idxs, _)) => idxs.push(i),
            None => missing.push((vec![i], arch)),
        }
    }
    if !missing.is_empty() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Validated at admission; an evicted provider re-resolves
            // deterministically here. Failure (e.g. the backing ELF vanished
            // since) panics into this unwind guard → typed error, not a
            // wedged worker.
            let resolved = concorde_trace::resolve_workload(&key.workload)
                .unwrap_or_else(|e| panic!("workload `{}` became unresolvable: {e}", key.workload));
            // Same region/warmup convention as `precompute_store`, so the
            // min-bound is computed over exactly the instructions the exact
            // store will cover.
            let warm_start = key.start.saturating_sub(shared.profile.warmup_len as u64);
            let warm_len = (key.start - warm_start) as usize;
            let region =
                resolved.materialize(key.trace, warm_start, warm_len + key.region_len as usize);
            let (w, r) = region.instrs.split_at(warm_len.min(region.instrs.len()));
            let mut est = MinBoundEstimator::new(w, r, &shared.profile);
            missing
                .iter()
                .map(|(_, arch)| est.min_bound_cpi(arch))
                .collect::<Vec<f64>>()
        }));
        match outcome {
            Ok(cpis) => {
                {
                    let mut sc = shared.shed_cache.lock().unwrap_or_else(|e| e.into_inner());
                    if sc.len() >= SHED_CACHE_MAX_KEYS && !sc.contains_key(key) {
                        sc.clear();
                    }
                    let entry = sc.entry(key.clone()).or_default();
                    for ((_, arch), cpi) in missing.iter().zip(&cpis) {
                        if entry.len() >= SHED_CACHE_MAX_ARCHS {
                            break;
                        }
                        entry.push((*arch, *cpi));
                    }
                }
                for ((idxs, _), cpi) in missing.iter().zip(&cpis) {
                    for i in idxs {
                        answers[*i] = Some(*cpi);
                    }
                }
            }
            Err(panic) => {
                // Jobs whose bound was already cached still get it below;
                // only the ones that needed the failed computation error.
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                let msg = panic_message(panic);
                for i in missing.iter().flat_map(|(idxs, _)| idxs) {
                    let (job, _) = &jobs[*i];
                    let us = job.enqueued.elapsed().as_micros() as u64;
                    respond(shared, job, PredictResponse::internal(job.req.id, &msg, us));
                }
            }
        }
    }
    let mut upgraders = Vec::new();
    for ((mut job, _), answer) in jobs.into_iter().zip(answers) {
        if let Some(cpi) = answer {
            let us = job.enqueued.elapsed().as_micros() as u64;
            respond(shared, &job, PredictResponse::shed(job.req.id, cpi, us));
            if job.req.notify {
                job.upgrade = true;
                job.parked = true;
                upgraders.push(job);
            }
        }
    }
    upgraders
}

/// Parks answered `notify: true` shed jobs back on the key's in-flight
/// entry, so the store's landing re-enqueues them and [`eval_group`] pushes
/// their `{"type":"upgrade"}` line. If the build landed (or errored) in the
/// window since the shed answer, the entry is gone — then the jobs re-enter
/// the request queue directly and upgrade via an ordinary cache probe.
fn park_for_upgrade(shared: &Shared, key: &FeatureKey, jobs: Vec<Job>) {
    if jobs.is_empty() {
        return;
    }
    let leftover = {
        let mut inflight = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match inflight.get_mut(key) {
            Some(entry) => {
                entry.extend(jobs);
                Vec::new()
            }
            None => jobs,
        }
    };
    push_front_batch(shared, leftover);
}

/// Re-enqueues jobs at the *front* of one round-robin shard (they have
/// waited the longest, and keeping a parked group together lets it re-batch
/// onto its now-cached store in one forward pass). Bypasses the capacity
/// check, like the single-queue push_front it replaces — these jobs already
/// held queue slots once.
fn push_front_batch(shared: &Shared, jobs: Vec<Job>) {
    if jobs.is_empty() {
        return;
    }
    let n = jobs.len();
    shared.queue_len.fetch_add(n, Ordering::SeqCst);
    let idx = shared.rr.fetch_add(1, Ordering::Relaxed) % shared.shards.len();
    {
        let mut q = shared.shards[idx]
            .q
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for job in jobs.into_iter().rev() {
            q.push_front(job);
        }
    }
    notify_enqueued(shared, idx, n);
}

/// Parks a missed group: joins the key's in-flight build if one exists
/// (single-flight deduplication), otherwise registers a new one and queues
/// it to the precompute pool. If the store landed between the cache probe
/// and the registry lock, evaluates immediately instead. Jobs whose
/// projected wait exceeds their miss-wait deadline ([`shed_decision`]) do
/// not park: they are answered immediately with the flagged analytic
/// min-bound, while the build itself is still registered/queued so the
/// exact store lands for later requests.
fn park_group(
    shared: &Shared,
    key: FeatureKey,
    sweep: Arc<SweepConfig>,
    jobs: Vec<(Job, MicroArch)>,
    scratch: &mut WorkerScratch,
) {
    let mut inflight = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = inflight.get_mut(&key) {
        let (parked, shed) = split_shed(shared, jobs, false);
        shared
            .metrics
            .coalesced
            .fetch_add(parked.len() as u64, Ordering::Relaxed);
        entry.extend(parked.into_iter().map(|(j, _)| j));
        drop(inflight);
        if !shed.is_empty() {
            let upgraders = answer_shed(shared, &key, shed);
            park_for_upgrade(shared, &key, upgraders);
        }
        return;
    }
    // No entry: the build either never ran or already completed. Builds land
    // in the cache *before* their registry entry is removed, so re-probing
    // under this lock cannot miss a completed build.
    if let Some(store) = shared.cache.get(&key) {
        drop(inflight);
        note_group_hit(shared, &jobs);
        eval_group(shared, &store, &jobs, scratch, true);
        return;
    }
    shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let (parked, shed) = split_shed(shared, jobs, true);
    // A fully-shed group would register a *speculative* build nobody waits
    // on. Parked waiters bound the build queue naturally (their clients
    // block), but shed clients are answered in milliseconds and can submit
    // cold keys faster than the pool retires them — past the backstop
    // backlog, skip the registration so a sustained cold storm cannot grow
    // the pool queue without bound. A later request for the key re-misses
    // and registers the build then.
    // A `notify: true` shed job is owed an upgrade, which only a registered
    // build can deliver — its group is never eligible for the skip.
    if parked.is_empty()
        && !shed.iter().any(|(j, _)| j.req.notify)
        && shared.inflight_builds.load(Ordering::SeqCst)
            >= SPECULATIVE_BACKLOG_MAX.saturating_mul(shared.n_pool.max(1))
    {
        shared
            .metrics
            .shed_build_skips
            .fetch_add(1, Ordering::Relaxed);
        drop(inflight);
        answer_shed(shared, &key, shed);
        return;
    }
    // Otherwise register the build even if every job shed: the shed
    // answers are stop-gaps, and the exact store must still land so
    // follow-up queries for the key become cache hits.
    inflight.insert(key.clone(), parked.into_iter().map(|(j, _)| j).collect());
    shared.inflight_builds.fetch_add(1, Ordering::SeqCst);
    drop(inflight);
    {
        let mut pq = shared.pre_queue.lock().unwrap_or_else(|e| e.into_inner());
        pq.push(PrecomputeTask {
            key: key.clone(),
            sweep,
            seq: shared.pre_seq.fetch_add(1, Ordering::Relaxed),
            bypassed: 0,
            retries: 0,
        });
    }
    shared.pre_notify.notify_one();
    if !shed.is_empty() {
        let upgraders = answer_shed(shared, &key, shed);
        park_for_upgrade(shared, &key, upgraders);
    }
}

/// Removes the key's in-flight entry and returns its parked jobs.
fn take_parked(shared: &Shared, key: &FeatureKey) -> Vec<Job> {
    shared
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(key)
        .unwrap_or_default()
}

/// Re-enqueues parked jobs at the front of a shard (they have waited the
/// longest) and releases the in-flight slot. Ordering contract with
/// [`drained_for_shutdown`]: the jobs are pushed — `queue_len` grown —
/// *before* the `inflight_builds` decrement, so a shutting-down worker that
/// reads "no builds in flight, queue empty" in that order can never have
/// raced between the two and stranded these jobs.
fn requeue_parked(shared: &Shared, mut jobs: Vec<Job>) {
    for job in &mut jobs {
        job.parked = true;
    }
    push_front_batch(shared, jobs);
    shared.inflight_builds.fetch_sub(1, Ordering::SeqCst);
    // Wake every worker: sleepers re-check the drain condition, and any
    // shard can steal the re-enqueued group.
    for s in &shared.shards {
        s.cv.notify_all();
    }
}

/// The dedicated precompute pool: pops the missed key with the most parked
/// requests (hot cold-keys first), builds its store, lands it in the cache,
/// and re-enqueues the parked jobs.
fn precompute_loop(shared: &Shared) {
    loop {
        let task = {
            let mut q = shared.pre_queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.is_empty() {
                    let idx = if q.len() == 1 {
                        0
                    } else {
                        // Snapshot deadlines + parked counts under the
                        // registry lock. Lock order pre_queue → inflight is
                        // safe: park_group releases the registry lock before
                        // queueing.
                        let inflight = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
                        pick_task(&q, |k| {
                            let waiters = inflight.get(k);
                            (
                                waiters.and_then(|v| v.iter().filter_map(|j| j.deadline).min()),
                                waiters.map_or(0, Vec::len),
                            )
                        })
                    };
                    for (i, t) in q.iter_mut().enumerate() {
                        if i != idx {
                            t.bypassed += 1;
                        }
                    }
                    break q.remove(idx);
                }
                // `pool_shutdown` (not `shutdown`): batch workers may still
                // queue rebuilds while draining, and their parked jobs would
                // strand if the pool left early. The service drop joins the
                // workers first, then sets this flag.
                if shared.pool_shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (qq, _) = shared
                    .pre_notify
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = qq;
            }
        };
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            precompute_store(shared, &task.key, &task.sweep)
        }));
        match outcome {
            Ok(store) => {
                // Fold the observed build latency into the EWMA (α = 1/4)
                // that prices the shed decision's projected wait; the first
                // observation seeds it directly (floored at 1µs so a
                // measured build never resets the "nothing observed yet"
                // bootstrap state).
                shared
                    .metrics
                    .store_build
                    .observe(t0.elapsed().as_secs_f64());
                let us = (t0.elapsed().as_micros() as u64).max(1);
                let prev = shared.build_ewma_us.load(Ordering::Relaxed);
                let next = if prev == 0 { us } else { (prev * 3 + us) / 4 };
                shared.build_ewma_us.store(next.max(1), Ordering::Relaxed);
                shared.metrics.precomputes.fetch_add(1, Ordering::Relaxed);
                // Land the store before removing the in-flight entry: a
                // worker that finds no entry must be able to trust a cache
                // re-probe (see `park_group`).
                shared.cache.insert(task.key.clone(), Arc::new(store));
                // The memoized shed bounds for the key are obsolete now —
                // the next probe answers exactly from the store.
                shared
                    .shed_cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&task.key);
                let jobs = take_parked(shared, &task.key);
                requeue_parked(shared, jobs);
            }
            Err(panic) => {
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                let msg = panic_message(panic);
                if task.retries < MAX_BUILD_RETRIES {
                    // Failover: re-queue the build once with a fresh seq.
                    // The single-flight entry stays — waiters stay parked,
                    // new requests for the key keep coalescing — and
                    // `inflight_builds` is NOT decremented, because a build
                    // is still owed; the drain ordering contract holds
                    // unchanged. The pool loop only exits on an empty queue,
                    // so a retry queued during shutdown still runs.
                    let mut pq = shared.pre_queue.lock().unwrap_or_else(|e| e.into_inner());
                    pq.push(PrecomputeTask {
                        key: task.key.clone(),
                        sweep: task.sweep,
                        seq: shared.pre_seq.fetch_add(1, Ordering::Relaxed),
                        bypassed: 0,
                        retries: task.retries + 1,
                    });
                    drop(pq);
                    shared.pre_notify.notify_one();
                    continue;
                }
                shared
                    .shed_cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&task.key);
                let jobs = take_parked(shared, &task.key);
                for job in &jobs {
                    // Upgrade jobs already answered with the shed bound;
                    // dropping them (no upgrade line) beats pairing their
                    // successful reply with a late error.
                    if job.upgrade {
                        continue;
                    }
                    let us = job.enqueued.elapsed().as_micros() as u64;
                    respond(shared, job, PredictResponse::internal(job.req.id, &msg, us));
                }
                // Every job was answered directly (nothing re-enqueued), so
                // the bare decrement upholds the drain ordering trivially.
                shared.inflight_builds.fetch_sub(1, Ordering::SeqCst);
                for s in &shared.shards {
                    s.cv.notify_all();
                }
            }
        }
    }
}

/// Decrements the active-precompute counter even if the precompute panics
/// (the pool's unwind guard keeps serving afterwards, so a leaked count
/// would permanently shrink every later precompute's thread budget).
struct PrecomputeSlot<'a>(&'a AtomicUsize);

impl Drop for PrecomputeSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn precompute_store(shared: &Shared, key: &FeatureKey, sweep: &SweepConfig) -> FeatureStore {
    // Chaos hook: may stall and/or panic here, inside the caller's unwind
    // guard (pool loop or inline-build catch).
    shared.faults.on_build();
    // Validated at admission; an evicted provider re-resolves
    // deterministically here. Failure (e.g. the backing ELF vanished since)
    // panics into the caller's unwind guard — retried once, then the
    // waiters get a typed internal error.
    let resolved = concorde_trace::resolve_workload(&key.workload)
        .unwrap_or_else(|e| panic!("workload `{}` became unresolvable: {e}", key.workload));
    // Same convention as `dataset.rs`: the region is [start, start + len),
    // functionally warmed by the up-to-`warmup_len` instructions before it.
    let warm_start = key.start.saturating_sub(shared.profile.warmup_len as u64);
    let warm_len = (key.start - warm_start) as usize;
    let region = resolved.materialize(key.trace, warm_start, warm_len + key.region_len as usize);
    let (w, r) = region.instrs.split_at(warm_len.min(region.instrs.len()));
    // Share the cores across concurrent misses: a lone miss uses every core,
    // while N simultaneous misses get ~cores/N threads each instead of
    // oversubscribing the machine N-fold.
    let active = shared.active_precomputes.fetch_add(1, Ordering::SeqCst) + 1;
    let _slot = PrecomputeSlot(&shared.active_precomputes);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = (cores / active).max(1);
    let store = FeatureStore::precompute_threaded(w, r, sweep, &shared.profile, threads);
    // Quantize before caching: the byte budget then admits the compressed
    // footprint, so f16/int8 servers hold 2–4× more regions resident.
    let store = match shared.cfg.store_encoding {
        ArenaEncoding::F32 => store,
        enc => store.reencoded(enc),
    };
    // `CONCORDE_VERIFY_STORES=1`: round-trip the freshly built store through
    // its own serialization before it lands in the cache. A failure panics
    // into the caller's unwind guard — retried once, then the waiters get a
    // typed internal error rather than a corrupt store.
    if concorde_core::cache::verify_stores_enabled() {
        if let Err(e) = concorde_core::cache::verify_store(&store) {
            panic!("store verification failed (CONCORDE_VERIFY_STORES=1): {e}");
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.effective_workers() >= 1);
        assert!(cfg.effective_cache_shards() >= 1);
        assert!(cfg.effective_precompute_workers() >= 1);
        assert!(cfg.queue_capacity > 0);
        assert!(cfg.max_batch > 1);
        assert!(cfg.cache_bytes > 0);
        assert!(cfg.max_connections >= 1);
        assert_eq!(cfg.miss_policy, MissPolicy::AsyncPool);
        assert_eq!(cfg.miss_slo, None, "shedding must default off");
    }

    #[test]
    fn shed_decision_limits_and_bootstrap() {
        // No limit configured → never shed, whatever the load.
        assert!(!shed_decision(usize::MAX, u64::MAX, None, None));
        // No observed build latency yet → never shed (conservative
        // bootstrap), even with a zero deadline.
        assert!(!shed_decision(100, 0, Some(1), Some(0)));
        // Projected wait 3 × 500µs = 1500µs against a 1000µs SLO → shed.
        assert!(shed_decision(3, 500, Some(1_000), None));
        // The same load against a roomier SLO → wait.
        assert!(!shed_decision(3, 500, Some(2_000), None));
        // A per-request deadline overrides the SLO in both directions.
        assert!(shed_decision(3, 500, Some(2_000), Some(1_000)));
        assert!(!shed_decision(3, 500, Some(1_000), Some(2_000)));
        // Boundary: projected == limit is a wait, not a shed.
        assert!(!shed_decision(2, 500, Some(1_000), None));
        // Huge values must not overflow into a wrong answer.
        assert!(shed_decision(usize::MAX, u64::MAX, Some(u64::MAX), None));
    }

    #[test]
    fn error_display() {
        assert!(ServeError::QueueFull.to_string().contains("full"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }

    fn task(start: u64, seq: u64) -> PrecomputeTask {
        PrecomputeTask {
            key: FeatureKey {
                workload: "S5".into(),
                trace: 0,
                start,
                region_len: 2048,
                sweep_hash: 7,
            },
            sweep: Arc::new(SweepConfig::quantized()),
            seq,
            bypassed: 0,
            retries: 0,
        }
    }

    /// Adapts a parked-count map to the EDF `prio` signature with no
    /// deadlines anywhere — the legacy most-parked-first configuration.
    fn counts_only(
        f: impl Fn(&FeatureKey) -> usize,
    ) -> impl Fn(&FeatureKey) -> (Option<Instant>, usize) {
        move |k| (None, f(k))
    }

    #[test]
    fn pick_task_prefers_most_parked_then_fifo() {
        let tasks = vec![task(0, 0), task(1, 1), task(2, 2)];
        // Distinct parked counts: the hottest key wins regardless of age.
        let counts = |k: &FeatureKey| match k.start {
            0 => 1,
            1 => 5,
            _ => 3,
        };
        assert_eq!(pick_task(&tasks, counts_only(counts)), 1);
        // Ties break FIFO (lowest seq), including all-zero counts.
        assert_eq!(pick_task(&tasks, counts_only(|_| 2)), 0);
        assert_eq!(pick_task(&tasks, counts_only(|_| 0)), 0);
        // FIFO holds even when the queue order is not seq order.
        let shuffled = vec![task(0, 9), task(1, 4), task(2, 6)];
        assert_eq!(pick_task(&shuffled, counts_only(|_| 1)), 1);
        // A key with no registry entry (waiters gone) sinks below any key
        // that still has parked requests.
        let counts = |k: &FeatureKey| if k.start == 2 { 1 } else { 0 };
        assert_eq!(pick_task(&tasks, counts_only(counts)), 2);
    }

    #[test]
    fn pick_task_is_earliest_deadline_first() {
        let tasks = vec![task(0, 0), task(1, 1), task(2, 2)];
        let now = Instant::now();
        // The tightest deadline wins, even against an older key with more
        // parked waiters (key 0: 10 waiters, no deadline; key 1: loose
        // deadline; key 2: tight deadline, youngest, fewest waiters).
        let prio = move |k: &FeatureKey| match k.start {
            0 => (None, 10),
            1 => (Some(now + Duration::from_millis(500)), 2),
            _ => (Some(now + Duration::from_millis(25)), 1),
        };
        assert_eq!(pick_task(&tasks, prio), 2);
        // Any deadline beats no deadline, regardless of parked counts.
        let prio = move |k: &FeatureKey| match k.start {
            1 => (Some(now + Duration::from_secs(3600)), 1),
            _ => (None, 50),
        };
        assert_eq!(pick_task(&tasks, prio), 1);
        // Equal deadlines fall back to most-parked, then seq.
        let d = now + Duration::from_millis(100);
        let prio = move |k: &FeatureKey| (Some(d), if k.start == 1 { 5 } else { 2 });
        assert_eq!(pick_task(&tasks, prio), 1);
        let prio = move |_: &FeatureKey| (Some(d), 3);
        assert_eq!(pick_task(&tasks, prio), 0);
    }

    #[test]
    fn bypassed_tasks_cannot_starve() {
        // A lone-waiter key skipped MAX_BYPASS times is built next even
        // while hotter keys keep arriving — priority never starves a task.
        let mut starved = task(0, 0);
        starved.bypassed = MAX_BYPASS;
        let mut also_starved = task(1, 1);
        also_starved.bypassed = MAX_BYPASS + 3;
        let tasks = vec![task(9, 9), starved, also_starved];
        // Without aging, key 9 (5 waiters) would win; with it, the oldest
        // over-bypassed task (seq 0) must.
        let counts = |k: &FeatureKey| if k.start == 9 { 5 } else { 1 };
        assert_eq!(pick_task(&tasks, counts_only(counts)), 1);
        // Below the threshold, priority order still applies.
        let mut fresh = task(0, 0);
        fresh.bypassed = MAX_BYPASS - 1;
        assert_eq!(pick_task(&[fresh, task(9, 9)], counts_only(counts)), 1);
        // The backstop outranks even a tight deadline elsewhere.
        let now = Instant::now();
        let mut starved = task(0, 7);
        starved.bypassed = MAX_BYPASS;
        let tasks = vec![task(1, 1), starved];
        let prio = move |k: &FeatureKey| match k.start {
            1 => (Some(now + Duration::from_millis(1)), 4),
            _ => (None, 1),
        };
        assert_eq!(pick_task(&tasks, prio), 1);
    }

    #[test]
    fn class_slo_parses_and_resolves() {
        let slo = ClassSlo::parse("interactive=25,batch=500").unwrap();
        assert_eq!(
            slo.get(RequestClass::Interactive),
            Some(Duration::from_millis(25))
        );
        assert_eq!(
            slo.get(RequestClass::Batch),
            Some(Duration::from_millis(500))
        );
        // Partial configuration leaves the other class SLO-less.
        let slo = ClassSlo::parse(" interactive = 10 ").unwrap();
        assert_eq!(
            slo.get(RequestClass::Interactive),
            Some(Duration::from_millis(10))
        );
        assert_eq!(slo.get(RequestClass::Batch), None);
        assert!(!slo.is_empty());
        assert!(ClassSlo::parse("").unwrap().is_empty());
        // Errors: bad class, bad number, missing `=`, duplicate class.
        assert!(ClassSlo::parse("vip=1").is_err());
        assert!(ClassSlo::parse("batch=fast").is_err());
        assert!(ClassSlo::parse("batch").is_err());
        assert!(ClassSlo::parse("batch=1,batch=2").is_err());
    }

    #[test]
    fn job_deadline_us_resolution_order() {
        let mut slo = ClassSlo::default();
        slo.set(RequestClass::Interactive, Duration::from_millis(25));
        let (tx, _rx) = mpsc::channel();
        let mut job = Job {
            req: PredictRequest::new(1, "S5", crate::ArchSpec::default()),
            enqueued: Instant::now(),
            tx: ResponseTx::Mpsc(tx),
            parked: false,
            deadline: None,
            upgrade: false,
        };
        // Class SLO applies when the request carries no deadline…
        assert_eq!(job.deadline_us(&slo), Some(25_000));
        // …and the request's own deadline_ms overrides it.
        job.req.deadline_ms = Some(3);
        assert_eq!(job.deadline_us(&slo), Some(3_000));
        // A class without an SLO resolves to none.
        job.req.deadline_ms = None;
        job.req.class = RequestClass::Batch;
        assert_eq!(job.deadline_us(&slo), None);
    }
}
