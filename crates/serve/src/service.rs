//! The prediction engine: bounded queue → micro-batching collector → worker
//! pool → batched model evaluation over cached feature stores.
//!
//! Requests enter a bounded FIFO. Each worker drains up to
//! [`ServeConfig::max_batch`] requests, waiting at most
//! [`ServeConfig::batch_deadline`] for stragglers (flush-on-size-or-deadline
//! micro-batching), groups the batch by region feature-store key, obtains
//! each group's [`FeatureStore`] through the shared LRU cache (hits skip the
//! analytic precompute entirely), and runs one batched MLP forward pass per
//! group through a worker-owned scratch arena.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use concorde_core::cache::{sweep_content_hash, FeatureKey, FeatureStoreCache, StoreArtifact};
use concorde_core::features::FeatureStore;
use concorde_core::model::ConcordePredictor;
use concorde_core::schema::FeatureSchema;
use concorde_core::sweep::{ReproProfile, SweepConfig};
use concorde_cyclesim::MicroArch;
use concorde_ml::MlpScratch;
use serde::{Deserialize, Serialize};

use crate::protocol::{PredictRequest, PredictResponse};

/// Largest per-request region length the service will generate (the paper's
/// full-scale regions are 100k instructions; this leaves ample headroom
/// while bounding the memory one request can demand).
pub const MAX_REGION_LEN: u32 = 1 << 20;

/// Which parameter sweep each region's feature store precomputes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepScope {
    /// The §5.2.3 power-of-two quantized sweep: one (expensive) precompute
    /// per region serves *any* microarchitecture afterwards — the
    /// design-space-exploration shape.
    Quantized,
    /// A minimal per-architecture sweep: cheap precompute, but the store is
    /// only reusable for queries that quantize onto the same grid.
    PerArch,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = `available_parallelism - 1`, at least 1).
    pub workers: usize,
    /// Bounded request-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Flush a collecting batch at this many requests.
    pub max_batch: usize,
    /// Flush a collecting batch at this age even if not full.
    pub batch_deadline: Duration,
    /// Feature-store LRU capacity (stores, not bytes).
    pub cache_capacity: usize,
    /// Sweep each store precomputes.
    pub sweep: SweepScope,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 4096,
            max_batch: 128,
            batch_deadline: Duration::from_millis(1),
            cache_capacity: 128,
            sweep: SweepScope::PerArch,
        }
    }
}

impl ServeConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .saturating_sub(1)
            .max(1)
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is at capacity; retry after draining.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
    /// The worker dropped the response channel (service torn down mid-call).
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Disconnected => write!(f, "service dropped the in-flight request"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Live engine counters (all monotonic except `queue_depth`).
#[derive(Debug, Default)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    errored: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    batch_requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
    latency_us_sum: AtomicU64,
    latency_us_max: AtomicU64,
}

impl Metrics {
    fn observe_latency(&self, us: u64) {
        self.latency_us_sum.fetch_add(us, Ordering::Relaxed);
        self.latency_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batch_requests = self.batch_requests.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            errored: self.errored.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches,
            avg_batch: if batches == 0 {
                0.0
            } else {
                batch_requests as f64 / batches as f64
            },
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            avg_latency_us: if completed == 0 {
                0.0
            } else {
                self.latency_us_sum.load(Ordering::Relaxed) as f64 / completed as f64
            },
            max_latency_us: self.latency_us_max.load(Ordering::Relaxed),
        }
    }
}

/// Serializable [`Metrics`] snapshot (the `{"cmd": "metrics"}` reply).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses delivered (success or error).
    pub completed: u64,
    /// Error responses among `completed`.
    pub errored: u64,
    /// Submissions rejected for a full queue.
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub avg_batch: f64,
    /// Feature-store cache hits.
    pub cache_hits: u64,
    /// Feature-store cache misses (precomputes).
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// High-water queue depth.
    pub max_queue_depth: usize,
    /// Mean enqueue→response latency (µs).
    pub avg_latency_us: f64,
    /// Worst enqueue→response latency (µs).
    pub max_latency_us: u64,
}

struct Job {
    req: PredictRequest,
    enqueued: Instant,
    tx: mpsc::Sender<PredictResponse>,
}

pub(crate) struct Shared {
    cfg: ServeConfig,
    model: ConcordePredictor,
    profile: ReproProfile,
    queue: Mutex<VecDeque<Job>>,
    notify: Condvar,
    cache: Mutex<FeatureStoreCache>,
    metrics: Metrics,
    shutdown: AtomicBool,
    /// Cache-miss precomputes currently running; divides the per-precompute
    /// thread budget so concurrent misses share the cores instead of each
    /// spawning `available_parallelism` threads.
    active_precomputes: AtomicUsize,
}

/// The serving engine; dropping it drains the workers.
pub struct PredictionService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PredictionService {
    /// Starts the worker pool around a trained model.
    ///
    /// `profile` must be the profile the model was trained with (it fixes
    /// the encoding width and the served region/warmup lengths).
    pub fn start(model: ConcordePredictor, profile: ReproProfile, cfg: ServeConfig) -> Self {
        let n_workers = cfg.effective_workers();
        let shared = Arc::new(Shared {
            cache: Mutex::new(FeatureStoreCache::new(cfg.cache_capacity)),
            cfg,
            model,
            profile,
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            active_precomputes: AtomicUsize::new(0),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("concorde-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        PredictionService { shared, workers }
    }

    /// Live metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The feature schema (version + named blocks) this service's model
    /// consumes; served to clients as `{"cmd": "schema"}`.
    pub fn schema(&self) -> FeatureSchema {
        self.shared.model.layout.schema()
    }

    /// Seeds the feature-store cache with a prebuilt store, so queries
    /// against that region skip the analytic precompute from the first
    /// request on.
    pub fn preload(&self, key: FeatureKey, store: FeatureStore) {
        let mut cache = self.shared.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.insert(key, Arc::new(store));
    }

    /// Loads a `concorde precompute` artifact from `path` into the cache.
    ///
    /// # Errors
    ///
    /// I/O and format errors from [`StoreArtifact::load`]; a mismatch
    /// between the artifact's encoding and the served model's (a store built
    /// at a different encoding width would assemble misshapen vectors); or a
    /// sweep-scope mismatch that would make the artifact unreachable by any
    /// request key (preloading it would silently leave the server cold).
    pub fn preload_artifact(&self, path: &std::path::Path) -> std::io::Result<FeatureKey> {
        let artifact = StoreArtifact::load(path)?;
        let model_enc = self.shared.model.layout.encoding;
        if artifact.store.encoding() != model_enc {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "artifact encoding ({} levels) does not match the served model ({} levels)",
                    artifact.store.encoding().levels,
                    model_enc.levels
                ),
            ));
        }
        // Request keys embed the sweep hash the server computes per request,
        // so an artifact built for the wrong sweep scope can never be hit.
        let quantized_hash = sweep_content_hash(&SweepConfig::quantized());
        let is_quantized_artifact = artifact.key.sweep_hash == quantized_hash;
        match self.shared.cfg.sweep {
            SweepScope::Quantized if !is_quantized_artifact => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "artifact was not built for the quantized sweep this server runs; \
                     rebuild with `concorde precompute --sweep quantized`",
                ));
            }
            SweepScope::PerArch if is_quantized_artifact => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "artifact was built for the quantized sweep but this server runs \
                     per-arch sweeps (start it with `--sweep quantized`)",
                ));
            }
            _ => {}
        }
        let key = artifact.key.clone();
        self.preload(artifact.key, artifact.store);
        Ok(key)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// An in-process client handle (cheap to clone, independent lifetime).
    pub fn client(&self) -> crate::Client {
        crate::Client::new(Arc::clone(&self.shared))
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

pub(crate) fn submit(
    shared: &Shared,
    req: PredictRequest,
) -> Result<mpsc::Receiver<PredictResponse>, ServeError> {
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        // Checked under the queue lock: workers make their final
        // shutdown-and-empty check under this same lock, so a job enqueued
        // here is guaranteed to be either drained or rejected — never
        // stranded after the last worker exits.
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        if q.len() >= shared.cfg.queue_capacity {
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull);
        }
        q.push_back(Job {
            req,
            enqueued: Instant::now(),
            tx,
        });
        let depth = q.len();
        shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        shared.metrics.queue_depth.store(depth, Ordering::Relaxed);
        shared
            .metrics
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
    }
    shared.notify.notify_one();
    Ok(rx)
}

pub(crate) fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    shared.metrics.snapshot()
}

pub(crate) fn schema_of(shared: &Shared) -> FeatureSchema {
    shared.model.layout.schema()
}

/// Collects one micro-batch: blocks for the first job, then keeps draining
/// until the batch is full or the deadline passes.
fn collect_batch(shared: &Shared) -> Vec<Job> {
    let mut batch = Vec::new();
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if shared.shutdown.load(Ordering::SeqCst) && q.is_empty() {
            return batch;
        }
        if !q.is_empty() {
            break;
        }
        q = shared.notify.wait(q).unwrap_or_else(|e| e.into_inner());
    }
    let deadline = Instant::now() + shared.cfg.batch_deadline;
    loop {
        while batch.len() < shared.cfg.max_batch {
            match q.pop_front() {
                Some(j) => batch.push(j),
                None => break,
            }
        }
        shared.metrics.queue_depth.store(q.len(), Ordering::Relaxed);
        if batch.len() >= shared.cfg.max_batch || shared.shutdown.load(Ordering::SeqCst) {
            return batch;
        }
        let now = Instant::now();
        if now >= deadline {
            return batch;
        }
        let (qq, timeout) = shared
            .notify
            .wait_timeout(q, deadline - now)
            .unwrap_or_else(|e| e.into_inner());
        q = qq;
        if timeout.timed_out() && q.is_empty() {
            return batch;
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = MlpScratch::default();
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        }
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .batch_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        process_batch(shared, batch, &mut scratch);
    }
}

/// A batch group: jobs sharing one feature store.
struct Group {
    key: FeatureKey,
    sweep: SweepConfig,
    jobs: Vec<(Job, MicroArch)>,
}

fn respond(shared: &Shared, job: &Job, resp: PredictResponse) {
    if resp.error.is_some() {
        shared.metrics.errored.fetch_add(1, Ordering::Relaxed);
    }
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .observe_latency(job.enqueued.elapsed().as_micros() as u64);
    let _ = job.tx.send(resp);
}

fn process_batch(shared: &Shared, batch: Vec<Job>, scratch: &mut MlpScratch) {
    // Group by feature-store key, resolving architectures up front.
    let mut groups: Vec<Group> = Vec::new();
    let mut index: HashMap<FeatureKey, usize> = HashMap::new();
    for job in batch {
        let arch = match job.req.arch.resolve() {
            Ok(a) => a,
            Err(msg) => {
                let id = job.req.id;
                let us = job.enqueued.elapsed().as_micros() as u64;
                respond(shared, &job, PredictResponse::err(id, msg, us));
                continue;
            }
        };
        if concorde_trace::by_id(&job.req.workload).is_none() {
            let id = job.req.id;
            let msg = format!("unknown workload `{}`", job.req.workload);
            let us = job.enqueued.elapsed().as_micros() as u64;
            respond(shared, &job, PredictResponse::err(id, msg, us));
            continue;
        }
        let sweep = match shared.cfg.sweep {
            SweepScope::Quantized => SweepConfig::quantized(),
            SweepScope::PerArch => SweepConfig::for_arch(&arch),
        };
        // Bound wire-controlled work: an unchecked `len` would let one
        // request allocate/generate gigabytes of trace (an allocation abort
        // is not catchable by the worker's unwind guard).
        if job.req.len > MAX_REGION_LEN {
            let id = job.req.id;
            let msg = format!(
                "region len {} exceeds the served maximum {MAX_REGION_LEN}",
                job.req.len
            );
            let us = job.enqueued.elapsed().as_micros() as u64;
            respond(shared, &job, PredictResponse::err(id, msg, us));
            continue;
        }
        let region_len = if job.req.len > 0 {
            job.req.len
        } else {
            shared.profile.region_len as u32
        };
        let key = FeatureKey {
            workload: job.req.workload.clone(),
            trace: job.req.trace,
            start: job.req.start,
            region_len,
            sweep_hash: sweep_content_hash(&sweep),
        };
        match index.get(&key) {
            Some(&g) => groups[g].jobs.push((job, arch)),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push(Group {
                    key,
                    sweep,
                    jobs: vec![(job, arch)],
                });
            }
        }
    }

    for group in groups {
        run_group(shared, group, scratch);
    }
}

fn run_group(shared: &Shared, group: Group, scratch: &mut MlpScratch) {
    let Group { key, sweep, jobs } = group;
    let archs: Vec<MicroArch> = jobs.iter().map(|(_, a)| *a).collect();
    // A panic anywhere in the analytic stage or model evaluation must not
    // kill the worker thread (a poisoned request could otherwise shrink the
    // pool one request at a time until the service wedges): isolate the
    // compute, answer the group's requests with an error, and keep serving.
    // The scratch arena is plain resizable buffers, fully rewritten by each
    // batch, so reusing it after an unwind is sound.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compute_group(shared, &key, &sweep, &archs, scratch)
    }));
    match outcome {
        Ok((cpis, was_cached)) => {
            for ((job, _), cpi) in jobs.iter().zip(cpis) {
                let us = job.enqueued.elapsed().as_micros() as u64;
                respond(
                    shared,
                    job,
                    PredictResponse::ok(job.req.id, cpi, was_cached, us),
                );
            }
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "prediction panicked".to_string());
            for (job, _) in &jobs {
                let us = job.enqueued.elapsed().as_micros() as u64;
                respond(
                    shared,
                    job,
                    PredictResponse::err(job.req.id, format!("internal error: {msg}"), us),
                );
            }
        }
    }
}

/// Store fetch/build + batched evaluation for one region group.
fn compute_group(
    shared: &Shared,
    key: &FeatureKey,
    sweep: &SweepConfig,
    archs: &[MicroArch],
    scratch: &mut MlpScratch,
) -> (Vec<f64>, bool) {
    // Fetch or build the store. The build runs outside any lock so other
    // workers keep serving cache hits during a precompute; at worst two
    // workers race to build the same store and one result wins.
    let cached = {
        let mut cache = shared.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.get(key)
    };
    let (store, was_cached) = match cached {
        Some(s) => {
            shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            (s, true)
        }
        None => {
            shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            let store = Arc::new(precompute_store(shared, key, sweep));
            let mut cache = shared.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.insert(key.clone(), Arc::clone(&store));
            (store, false)
        }
    };
    (
        shared.model.predict_batch_with(&store, archs, scratch),
        was_cached,
    )
}

/// Decrements the active-precompute counter even if the precompute panics
/// (the worker's unwind guard keeps serving afterwards, so a leaked count
/// would permanently shrink every later precompute's thread budget).
struct PrecomputeSlot<'a>(&'a AtomicUsize);

impl Drop for PrecomputeSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn precompute_store(shared: &Shared, key: &FeatureKey, sweep: &SweepConfig) -> FeatureStore {
    let spec = concorde_trace::by_id(&key.workload).expect("validated before grouping");
    // Same convention as `dataset.rs`: the region is [start, start + len),
    // functionally warmed by the up-to-`warmup_len` instructions before it.
    let warm_start = key.start.saturating_sub(shared.profile.warmup_len as u64);
    let warm_len = (key.start - warm_start) as usize;
    let region = concorde_trace::generate_region(
        &spec,
        key.trace,
        warm_start,
        warm_len + key.region_len as usize,
    );
    let (w, r) = region.instrs.split_at(warm_len.min(region.instrs.len()));
    // Share the cores across concurrent misses: a lone miss uses every core,
    // while N simultaneous misses get ~cores/N threads each instead of
    // oversubscribing the machine N-fold.
    let active = shared.active_precomputes.fetch_add(1, Ordering::SeqCst) + 1;
    let _slot = PrecomputeSlot(&shared.active_precomputes);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = (cores / active).max(1);
    FeatureStore::precompute_threaded(w, r, sweep, &shared.profile, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.effective_workers() >= 1);
        assert!(cfg.queue_capacity > 0);
        assert!(cfg.max_batch > 1);
    }

    #[test]
    fn error_display() {
        assert!(ServeError::QueueFull.to_string().contains("full"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }
}
