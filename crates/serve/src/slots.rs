//! Reusable response slots: the warm path's replacement for per-request
//! `mpsc::channel()` pairs.
//!
//! `submit()` used to allocate a fresh mpsc channel (sender + receiver +
//! internal queue) for every request. A [`SlotPool`] instead recycles a slab
//! of [`SlotInner`]s: acquiring a slot pops a free index (no allocation when
//! warm), the worker delivers through an [`SlotSender`], and dropping the
//! [`SlotReceiver`] bumps the slot's **generation** and returns it to the
//! free list. A parked, shed, or upgrade job can hold its sender arbitrarily
//! long: if the receiver has moved on, the generation no longer matches and
//! the late delivery is discarded instead of leaking into a recycled
//! request. The legacy mpsc path stays available as a compatibility shim via
//! [`crate::service::ResponseTx`].

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::PredictResponse;

/// One response slot: a tiny generation-tagged mailbox.
///
/// A slot holds at most a handful of messages per generation (the first
/// answer plus an optional `{"type":"upgrade"}` push), so the queue keeps
/// its capacity across recycles and warm deliveries never allocate.
#[derive(Debug)]
struct SlotInner {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Debug)]
struct SlotState {
    /// Bumped every time the receiver releases the slot; senders carrying a
    /// stale generation are ignored.
    gen: u64,
    msgs: VecDeque<PredictResponse>,
}

/// A recycling slab of response slots. One per service.
#[derive(Debug, Default)]
pub struct SlotPool {
    inner: Mutex<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    slots: Vec<Arc<SlotInner>>,
    free: Vec<u32>,
}

impl SlotPool {
    /// Acquires a slot, growing the slab only when the free list is empty.
    pub fn acquire(self: &Arc<Self>) -> SlotReceiver {
        let (slot, idx) = {
            let mut p = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            match p.free.pop() {
                Some(idx) => (Arc::clone(&p.slots[idx as usize]), idx),
                None => {
                    let slot = Arc::new(SlotInner {
                        state: Mutex::new(SlotState {
                            gen: 0,
                            msgs: VecDeque::with_capacity(2),
                        }),
                        cv: Condvar::new(),
                    });
                    p.slots.push(Arc::clone(&slot));
                    (slot, (p.slots.len() - 1) as u32)
                }
            }
        };
        let gen = slot.state.lock().unwrap_or_else(|e| e.into_inner()).gen;
        SlotReceiver {
            slot,
            gen,
            idx,
            pool: Arc::clone(self),
        }
    }

    /// Slots currently live (acquired at least once).
    pub fn capacity(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slots
            .len()
    }
}

/// Receiving half of a slot, held by the submitter. Dropping it retires the
/// generation and recycles the slot.
#[derive(Debug)]
pub struct SlotReceiver {
    slot: Arc<SlotInner>,
    gen: u64,
    idx: u32,
    pool: Arc<SlotPool>,
}

impl SlotReceiver {
    /// A sender delivering into this slot's current generation.
    pub fn sender(&self) -> SlotSender {
        SlotSender {
            slot: Arc::clone(&self.slot),
            gen: self.gen,
        }
    }

    /// Blocks until a response is delivered.
    pub fn recv(&self) -> PredictResponse {
        let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = st.msgs.pop_front() {
                return r;
            }
            st = self.slot.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a response is delivered or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<PredictResponse> {
        let deadline = Instant::now() + timeout;
        let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = st.msgs.pop_front() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .slot
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
    }

    /// A response if one is already waiting (non-blocking).
    pub fn try_recv(&self) -> Option<PredictResponse> {
        self.slot
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .msgs
            .pop_front()
    }
}

impl Drop for SlotReceiver {
    fn drop(&mut self) {
        {
            let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
            // Retire this generation: any sender still holding it becomes a
            // no-op, and leftover messages never leak into the next request.
            st.gen = st.gen.wrapping_add(1);
            st.msgs.clear();
        }
        self.pool
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .free
            .push(self.idx);
    }
}

/// Sending half of a slot, carried inside a queued/parked job. Cloneable;
/// deliveries against a retired generation are silently dropped (the same
/// contract as sending on a closed mpsc channel).
#[derive(Debug, Clone)]
pub struct SlotSender {
    slot: Arc<SlotInner>,
    gen: u64,
}

impl SlotSender {
    /// Delivers `resp` unless the receiver has already released the slot.
    pub fn send(&self, resp: PredictResponse) {
        let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.gen == self.gen {
            st.msgs.push_back(resp);
            self.slot.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_and_recycles() {
        let pool = Arc::new(SlotPool::default());
        let rx = pool.acquire();
        let tx = rx.sender();
        tx.send(PredictResponse::ok(1, 1.0, false, 5));
        tx.send(PredictResponse::upgrade(1, 2.0, 9));
        assert_eq!(rx.recv().cpi, Some(1.0));
        assert!(rx.recv().is_upgrade());
        drop(rx);
        // Same slab slot is reused.
        let rx2 = pool.acquire();
        assert_eq!(pool.capacity(), 1);
        drop(rx2);
    }

    #[test]
    fn stale_generation_is_dropped() {
        let pool = Arc::new(SlotPool::default());
        let rx = pool.acquire();
        let stale = rx.sender();
        drop(rx); // retire the generation
        let rx2 = pool.acquire(); // recycles the same slot
        stale.send(PredictResponse::ok(7, 1.0, false, 1));
        assert!(rx2.try_recv().is_none(), "stale delivery must not leak");
        let fresh = rx2.sender();
        fresh.send(PredictResponse::ok(8, 2.0, false, 1));
        assert_eq!(rx2.recv().id, 8);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let pool = Arc::new(SlotPool::default());
        let rx = pool.acquire();
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_none());
        let tx = rx.sender();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(PredictResponse::ok(3, 1.5, true, 2));
        });
        let got = rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(got.id, 3);
        h.join().unwrap();
    }

    #[test]
    fn cross_thread_wakeup() {
        let pool = Arc::new(SlotPool::default());
        let rx = pool.acquire();
        let tx = rx.sender();
        let h = std::thread::spawn(move || tx.send(PredictResponse::ok(9, 0.5, false, 1)));
        assert_eq!(rx.recv().id, 9);
        h.join().unwrap();
    }
}
