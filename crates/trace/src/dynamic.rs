//! Dynamic (non-suite) workload registration and unified resolution.
//!
//! The 29-program suite is a closed catalog; real-program front ends (the
//! RISC-V ELF ingester in `concorde-riscv`, and anything after it) supply an
//! *open* set of workloads whose traces come from executing actual binaries.
//! This module is the seam between the two: a process-global registry of
//! [`TraceProvider`]s keyed by workload id, plus prefix-dispatched
//! *resolvers* that lazily construct a provider the first time an id like
//! `riscv:/path/to/prog.elf` is seen.
//!
//! [`resolve_workload`] is the one lookup every consumer (the serving
//! validation path, `precompute`, the CLI) goes through:
//!
//! 1. suite ids (`"S5"`) hit the cached catalog — no locks, no allocation,
//!    preserving the serving warm path's zero-allocation contract;
//! 2. already-registered dynamic ids hit the registry under a read lock;
//! 3. otherwise the longest matching registered prefix resolver runs (e.g.
//!    loading and executing an ELF), and its provider is cached so the
//!    expensive construction happens once per process.
//!
//! Determinism contract: a provider's [`TraceProvider::materialize`] must be
//! a pure function of `(trace_idx, start, len)` — same region reference,
//! byte-identical instructions — exactly like `generate_region` for suite
//! workloads. Providers are cached for the process lifetime; re-resolving an
//! id never re-reads the underlying file.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::generator::generate_region;
use crate::region::DynTrace;
use crate::workload::{by_id_ref, WorkloadSpec};

/// A source of dynamic instruction traces for one workload.
///
/// Implementations must be deterministic: `materialize` is a pure function
/// of its arguments (plus the provider's immutable construction inputs).
pub trait TraceProvider: Send + Sync {
    /// The workload's statistical descriptor. `spec().id` is the registry
    /// key; `n_traces`/`trace_len` bound region sampling exactly as they do
    /// for suite workloads.
    fn spec(&self) -> &WorkloadSpec;

    /// Materializes `len` instructions of trace `trace_idx` starting at
    /// instruction offset `start`. Regions past the end of a finite trace
    /// are truncated (possibly to empty), never an error.
    fn materialize(&self, trace_idx: u32, start: u64, len: usize) -> DynTrace;
}

/// A lazily-invoked constructor for ids carrying a given prefix.
type Resolver = Box<dyn Fn(&str) -> Result<Arc<dyn TraceProvider>, String> + Send + Sync>;

struct Registry {
    providers: RwLock<HashMap<String, Arc<dyn TraceProvider>>>,
    resolvers: RwLock<Vec<(String, Resolver)>>,
    /// Serializes cold-path construction so two threads racing on the same
    /// unseen id build its provider once, not twice.
    build: Mutex<()>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        providers: RwLock::new(HashMap::new()),
        resolvers: RwLock::new(Vec::new()),
        build: Mutex::new(()),
    })
}

/// A workload id resolved to its trace source: a static suite spec or a
/// registered dynamic provider.
#[derive(Clone)]
pub enum ResolvedWorkload {
    /// One of the 29 catalog programs.
    Suite(&'static WorkloadSpec),
    /// A registered dynamic workload (e.g. an executed ELF binary).
    Dynamic(Arc<dyn TraceProvider>),
}

impl ResolvedWorkload {
    /// The workload's descriptor.
    pub fn spec(&self) -> &WorkloadSpec {
        match self {
            ResolvedWorkload::Suite(s) => s,
            ResolvedWorkload::Dynamic(p) => p.spec(),
        }
    }

    /// Materializes a region (suite workloads via [`generate_region`],
    /// dynamic ones via their provider). Deterministic in both arms.
    pub fn materialize(&self, trace_idx: u32, start: u64, len: usize) -> DynTrace {
        match self {
            ResolvedWorkload::Suite(s) => generate_region(s, trace_idx, start, len),
            ResolvedWorkload::Dynamic(p) => p.materialize(trace_idx, start, len),
        }
    }
}

impl std::fmt::Debug for ResolvedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolvedWorkload::Suite(s) => write!(f, "ResolvedWorkload::Suite({})", s.id),
            ResolvedWorkload::Dynamic(p) => write!(f, "ResolvedWorkload::Dynamic({})", p.spec().id),
        }
    }
}

/// Registers a provider under `provider.spec().id`, replacing any previous
/// registration of the same id.
pub fn register_provider(provider: Arc<dyn TraceProvider>) {
    let id = provider.spec().id.clone();
    registry()
        .providers
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, provider);
}

/// Registers a lazy resolver for ids starting with `prefix` (e.g.
/// `"riscv:"`). Re-registering a prefix replaces the previous resolver.
/// The resolver runs at most once per distinct id; its provider is cached.
pub fn register_resolver(
    prefix: &str,
    f: impl Fn(&str) -> Result<Arc<dyn TraceProvider>, String> + Send + Sync + 'static,
) {
    let mut resolvers = registry()
        .resolvers
        .write()
        .unwrap_or_else(|e| e.into_inner());
    resolvers.retain(|(p, _)| p != prefix);
    resolvers.push((prefix.to_string(), Box::new(f)));
}

/// Ids of every currently-registered dynamic workload (sorted, so catalog
/// listings are stable).
pub fn dynamic_ids() -> Vec<String> {
    let mut ids: Vec<String> = registry()
        .providers
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .keys()
        .cloned()
        .collect();
    ids.sort();
    ids
}

/// Resolves a workload id: suite catalog first (lock-free, allocation-free),
/// then registered dynamic providers, then prefix resolvers (which may do
/// arbitrary work — load a file, execute a binary — exactly once per id).
///
/// # Errors
///
/// An unknown id, or a resolver failure (missing file, malformed binary),
/// returns a human-readable message suitable for a typed wire error.
pub fn resolve_workload(id: &str) -> Result<ResolvedWorkload, String> {
    if let Some(spec) = by_id_ref(id) {
        return Ok(ResolvedWorkload::Suite(spec));
    }
    let reg = registry();
    if let Some(p) = reg
        .providers
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(id)
    {
        return Ok(ResolvedWorkload::Dynamic(Arc::clone(p)));
    }
    // Cold path: find a matching resolver. The build lock serializes
    // construction; re-check the registry under it so a losing racer reuses
    // the winner's provider instead of re-executing the load.
    let has_match = {
        let resolvers = reg.resolvers.read().unwrap_or_else(|e| e.into_inner());
        resolvers.iter().any(|(p, _)| id.starts_with(p.as_str()))
    };
    if !has_match {
        return Err(format!(
            "unknown workload `{id}` (not in the suite catalog and no dynamic resolver matches)"
        ));
    }
    let _build = reg.build.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(p) = reg
        .providers
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(id)
    {
        return Ok(ResolvedWorkload::Dynamic(Arc::clone(p)));
    }
    let resolvers = reg.resolvers.read().unwrap_or_else(|e| e.into_inner());
    let (_, f) = resolvers
        .iter()
        .filter(|(p, _)| id.starts_with(p.as_str()))
        .max_by_key(|(p, _)| p.len())
        .expect("match re-checked above");
    let provider = f(id)?;
    reg.providers
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id.to_string(), Arc::clone(&provider));
    Ok(ResolvedWorkload::Dynamic(provider))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{BranchProfile, CodeShape, MemProfile, OpMix, WorkloadClass};
    use crate::Instruction;

    struct Fixed {
        spec: WorkloadSpec,
        instrs: Vec<Instruction>,
    }

    impl TraceProvider for Fixed {
        fn spec(&self) -> &WorkloadSpec {
            &self.spec
        }
        fn materialize(&self, _trace: u32, start: u64, len: usize) -> DynTrace {
            let s = (start as usize).min(self.instrs.len());
            let e = (s + len).min(self.instrs.len());
            DynTrace {
                workload_id: self.spec.id.clone(),
                trace_idx: 0,
                start,
                instrs: self.instrs[s..e].to_vec(),
            }
        }
    }

    fn fixed(id: &str, n: usize) -> Arc<dyn TraceProvider> {
        let instrs: Vec<Instruction> = (0..n)
            .map(|i| {
                Instruction::compute(
                    0x1000 + 4 * i as u64,
                    crate::OpClass::IntAlu,
                    [Some(1), None],
                    Some(2),
                )
            })
            .collect();
        Arc::new(Fixed {
            spec: WorkloadSpec::single_phase(
                id,
                "fixed",
                WorkloadClass::Real,
                7,
                1,
                n as u64,
                OpMix::int_heavy(),
                MemProfile::resident(4096),
                BranchProfile::predictable(),
                CodeShape::kernel(),
            ),
            instrs,
        })
    }

    #[test]
    fn suite_ids_resolve_without_registration() {
        let r = resolve_workload("S5").expect("suite id");
        assert_eq!(r.spec().id, "S5");
        assert!(matches!(r, ResolvedWorkload::Suite(_)));
        // Suite resolution matches generate_region bitwise.
        let a = r.materialize(0, 0, 512);
        let b = generate_region(by_id_ref("S5").unwrap(), 0, 0, 512);
        assert_eq!(a.instrs, b.instrs);
    }

    #[test]
    fn unknown_ids_error_with_context() {
        let e = resolve_workload("test-dyn:nope/zz").unwrap_err();
        assert!(e.contains("unknown workload"), "{e}");
    }

    #[test]
    fn registered_provider_resolves_and_truncates() {
        register_provider(fixed("test-dyn:fixed-a", 100));
        let r = resolve_workload("test-dyn:fixed-a").expect("registered");
        assert_eq!(r.spec().trace_len, 100);
        assert_eq!(r.materialize(0, 0, 64).len(), 64);
        assert_eq!(r.materialize(0, 90, 64).len(), 10, "truncated past end");
        assert_eq!(r.materialize(0, 1000, 64).len(), 0, "empty past end");
        assert!(dynamic_ids().contains(&"test-dyn:fixed-a".to_string()));
    }

    #[test]
    fn prefix_resolver_runs_once_and_caches() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        register_resolver("test-lazy:", |id| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            if id.ends_with("bad") {
                return Err("deliberately unresolvable".to_string());
            }
            Ok(fixed(id, 32))
        });
        let before = CALLS.load(Ordering::SeqCst);
        let a = resolve_workload("test-lazy:x").expect("resolves");
        let b = resolve_workload("test-lazy:x").expect("cached");
        assert_eq!(a.spec().id, b.spec().id);
        assert_eq!(
            CALLS.load(Ordering::SeqCst),
            before + 1,
            "resolver must run once per id"
        );
        let e = resolve_workload("test-lazy:bad").unwrap_err();
        assert!(e.contains("unresolvable"));
        // Failures are not cached as providers; they re-resolve (and
        // re-fail) on the next attempt.
        let _ = resolve_workload("test-lazy:bad").unwrap_err();
    }
}
