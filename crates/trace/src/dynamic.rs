//! Dynamic (non-suite) workload registration and unified resolution.
//!
//! The 29-program suite is a closed catalog; real-program front ends (the
//! RISC-V ELF ingester in `concorde-riscv`, and anything after it) supply an
//! *open* set of workloads whose traces come from executing actual binaries.
//! This module is the seam between the two: a process-global registry of
//! [`TraceProvider`]s keyed by workload id, plus prefix-dispatched
//! *resolvers* that lazily construct a provider the first time an id like
//! `riscv:/path/to/prog.elf` is seen.
//!
//! [`resolve_workload`] is the one lookup every consumer (the serving
//! validation path, `precompute`, the CLI) goes through:
//!
//! 1. suite ids (`"S5"`) hit the cached catalog — no locks, no allocation,
//!    preserving the serving warm path's zero-allocation contract;
//! 2. already-registered dynamic ids hit the registry under a read lock;
//! 3. otherwise the longest matching registered prefix resolver runs (e.g.
//!    loading and executing an ELF), and its provider is cached so the
//!    expensive construction happens once per process.
//!
//! Determinism contract: a provider's [`TraceProvider::materialize`] must be
//! a pure function of `(trace_idx, start, len)` — same region reference,
//! byte-identical instructions — exactly like `generate_region` for suite
//! workloads.
//!
//! Memory contract: explicitly registered providers ([`register_provider`])
//! are pinned for the process lifetime, but resolver-built ones are an
//! unbounded, caller-named set (each id caches a full execution trace), so
//! they live in a FIFO cache capped at [`RESOLVED_PROVIDER_CAP`]. An
//! evicted id re-resolves transparently on next use; because resolvers are
//! deterministic, the rebuilt provider serves byte-identical regions as
//! long as its backing input (e.g. the ELF file) is unchanged.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::generator::generate_region;
use crate::region::DynTrace;
use crate::workload::{by_id_ref, WorkloadSpec};

/// A source of dynamic instruction traces for one workload.
///
/// Implementations must be deterministic: `materialize` is a pure function
/// of its arguments (plus the provider's immutable construction inputs).
pub trait TraceProvider: Send + Sync {
    /// The workload's statistical descriptor. `spec().id` is the registry
    /// key; `n_traces`/`trace_len` bound region sampling exactly as they do
    /// for suite workloads.
    fn spec(&self) -> &WorkloadSpec;

    /// Materializes `len` instructions of trace `trace_idx` starting at
    /// instruction offset `start`. Regions past the end of a finite trace
    /// are truncated (possibly to empty), never an error.
    fn materialize(&self, trace_idx: u32, start: u64, len: usize) -> DynTrace;
}

/// A lazily-invoked constructor for ids carrying a given prefix.
type Resolver = Box<dyn Fn(&str) -> Result<Arc<dyn TraceProvider>, String> + Send + Sync>;

/// Maximum resolver-built providers cached at once. Each provider holds a
/// full recorded trace (multiple MB for real binaries), and the id space is
/// caller-named (`riscv:<path>@<budget>` admits unbounded distinct ids), so
/// the cache must be bounded: past the cap the oldest resolver-built entry
/// is evicted FIFO. Explicitly registered (pinned) providers don't count
/// against the cap and are never evicted.
pub const RESOLVED_PROVIDER_CAP: usize = 16;

struct CacheEntry {
    provider: Arc<dyn TraceProvider>,
    /// Explicit registrations are pinned; resolver-built entries are not
    /// and rotate out once [`RESOLVED_PROVIDER_CAP`] is reached.
    pinned: bool,
}

/// One cold-path construction: racers on the same id block on its latch
/// (`OnceLock::get_or_init` serializes initializers) and share one result.
type BuildLatch = OnceLock<Result<Arc<dyn TraceProvider>, String>>;

struct Registry {
    providers: RwLock<HashMap<String, CacheEntry>>,
    resolvers: RwLock<Vec<(String, Resolver)>>,
    /// In-flight cold-path builds, one latch per id: two threads racing on
    /// the same unseen id build its provider once, while *different* ids
    /// build concurrently — one slow resolver (file read + up to millions
    /// of interpreted instructions) must not stall unrelated resolutions.
    building: Mutex<HashMap<String, Arc<BuildLatch>>>,
    /// Resolver-built ids in insertion order, oldest first (FIFO eviction).
    resolved_order: Mutex<VecDeque<String>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        providers: RwLock::new(HashMap::new()),
        resolvers: RwLock::new(Vec::new()),
        building: Mutex::new(HashMap::new()),
        resolved_order: Mutex::new(VecDeque::new()),
    })
}

/// A workload id resolved to its trace source: a static suite spec or a
/// registered dynamic provider.
#[derive(Clone)]
pub enum ResolvedWorkload {
    /// One of the 29 catalog programs.
    Suite(&'static WorkloadSpec),
    /// A registered dynamic workload (e.g. an executed ELF binary).
    Dynamic(Arc<dyn TraceProvider>),
}

impl ResolvedWorkload {
    /// The workload's descriptor.
    pub fn spec(&self) -> &WorkloadSpec {
        match self {
            ResolvedWorkload::Suite(s) => s,
            ResolvedWorkload::Dynamic(p) => p.spec(),
        }
    }

    /// Materializes a region (suite workloads via [`generate_region`],
    /// dynamic ones via their provider). Deterministic in both arms.
    pub fn materialize(&self, trace_idx: u32, start: u64, len: usize) -> DynTrace {
        match self {
            ResolvedWorkload::Suite(s) => generate_region(s, trace_idx, start, len),
            ResolvedWorkload::Dynamic(p) => p.materialize(trace_idx, start, len),
        }
    }
}

impl std::fmt::Debug for ResolvedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolvedWorkload::Suite(s) => write!(f, "ResolvedWorkload::Suite({})", s.id),
            ResolvedWorkload::Dynamic(p) => write!(f, "ResolvedWorkload::Dynamic({})", p.spec().id),
        }
    }
}

/// Registers a provider under `provider.spec().id`, replacing any previous
/// registration of the same id. Explicit registrations are *pinned*: they
/// never count against [`RESOLVED_PROVIDER_CAP`] and are never evicted.
pub fn register_provider(provider: Arc<dyn TraceProvider>) {
    let id = provider.spec().id.clone();
    let reg = registry();
    reg.providers
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .insert(
            id.clone(),
            CacheEntry {
                provider,
                pinned: true,
            },
        );
    // If the id was previously resolver-built, pinning supersedes its spot
    // in the eviction queue.
    reg.resolved_order
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|i| *i != id);
}

/// Registers a lazy resolver for ids starting with `prefix` (e.g.
/// `"riscv:"`). Re-registering a prefix replaces the previous resolver.
/// The resolver runs at most once per distinct id; its provider is cached.
pub fn register_resolver(
    prefix: &str,
    f: impl Fn(&str) -> Result<Arc<dyn TraceProvider>, String> + Send + Sync + 'static,
) {
    let mut resolvers = registry()
        .resolvers
        .write()
        .unwrap_or_else(|e| e.into_inner());
    resolvers.retain(|(p, _)| p != prefix);
    resolvers.push((prefix.to_string(), Box::new(f)));
}

/// Ids of every currently-registered dynamic workload (sorted, so catalog
/// listings are stable).
pub fn dynamic_ids() -> Vec<String> {
    let mut ids: Vec<String> = registry()
        .providers
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .keys()
        .cloned()
        .collect();
    ids.sort();
    ids
}

/// Resolves `id` against the suite catalog and *already-registered*
/// providers only — never runs a prefix resolver, so it does no I/O and
/// executes nothing. The serving admission path uses this to keep
/// client-supplied ids from triggering file reads or binary execution
/// unless the operator has opted in.
pub fn resolve_registered(id: &str) -> Option<ResolvedWorkload> {
    if let Some(spec) = by_id_ref(id) {
        return Some(ResolvedWorkload::Suite(spec));
    }
    registry()
        .providers
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(id)
        .map(|e| ResolvedWorkload::Dynamic(Arc::clone(&e.provider)))
}

/// Caches a freshly resolver-built provider, evicting the oldest unpinned
/// entries past [`RESOLVED_PROVIDER_CAP`]. A racer that already cached the
/// id wins (entries are never replaced here).
fn cache_resolved(reg: &Registry, id: &str, provider: &Arc<dyn TraceProvider>) {
    let mut providers = reg.providers.write().unwrap_or_else(|e| e.into_inner());
    if providers.contains_key(id) {
        return;
    }
    let mut order = reg.resolved_order.lock().unwrap_or_else(|e| e.into_inner());
    while order.len() >= RESOLVED_PROVIDER_CAP {
        let victim = order.pop_front().expect("len checked");
        // A stale queue entry for a since-pinned id just drops out of the
        // queue; only unpinned entries actually leave the cache.
        if providers.get(&victim).is_some_and(|e| !e.pinned) {
            providers.remove(&victim);
        }
    }
    order.push_back(id.to_string());
    providers.insert(
        id.to_string(),
        CacheEntry {
            provider: Arc::clone(provider),
            pinned: false,
        },
    );
}

/// Resolves a workload id: suite catalog first (lock-free, allocation-free),
/// then registered dynamic providers, then prefix resolvers (which may do
/// arbitrary work — load a file, execute a binary — once per distinct id
/// while it stays cached; see [`RESOLVED_PROVIDER_CAP`]).
///
/// # Errors
///
/// An unknown id, or a resolver failure (missing file, malformed binary),
/// returns a human-readable message suitable for a typed wire error.
/// Failures are never cached: the next attempt re-runs the resolver.
pub fn resolve_workload(id: &str) -> Result<ResolvedWorkload, String> {
    if let Some(r) = resolve_registered(id) {
        return Ok(r);
    }
    let reg = registry();
    let has_match = {
        let resolvers = reg.resolvers.read().unwrap_or_else(|e| e.into_inner());
        resolvers.iter().any(|(p, _)| id.starts_with(p.as_str()))
    };
    if !has_match {
        return Err(format!(
            "unknown workload `{id}` (not in the suite catalog and no dynamic resolver matches)"
        ));
    }
    // Cold path: take (or join) this id's build latch. `get_or_init`
    // serializes racers on the *same* id while different ids build in
    // parallel on their own latches.
    let latch = {
        let mut building = reg.building.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(building.entry(id.to_string()).or_default())
    };
    let result = latch
        .get_or_init(|| {
            // Re-check the cache under the latch: a racer may have built
            // and cached the id between our miss and latch acquisition.
            if let Some(e) = reg
                .providers
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(id)
            {
                return Ok(Arc::clone(&e.provider));
            }
            let resolvers = reg.resolvers.read().unwrap_or_else(|e| e.into_inner());
            let (_, f) = resolvers
                .iter()
                .filter(|(p, _)| id.starts_with(p.as_str()))
                .max_by_key(|(p, _)| p.len())
                .expect("match checked above");
            f(id)
        })
        .clone();
    // Build settled (either way): retire the latch so failed ids retry with
    // a fresh build and the map stays bounded by in-flight builds. The
    // ptr_eq guard keeps a slow loser from retiring a successor's latch.
    {
        let mut building = reg.building.lock().unwrap_or_else(|e| e.into_inner());
        if building.get(id).is_some_and(|l| Arc::ptr_eq(l, &latch)) {
            building.remove(id);
        }
    }
    let provider = result?;
    cache_resolved(reg, id, &provider);
    Ok(ResolvedWorkload::Dynamic(provider))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{BranchProfile, CodeShape, MemProfile, OpMix, WorkloadClass};
    use crate::Instruction;

    struct Fixed {
        spec: WorkloadSpec,
        instrs: Vec<Instruction>,
    }

    impl TraceProvider for Fixed {
        fn spec(&self) -> &WorkloadSpec {
            &self.spec
        }
        fn materialize(&self, _trace: u32, start: u64, len: usize) -> DynTrace {
            let s = (start as usize).min(self.instrs.len());
            let e = (s + len).min(self.instrs.len());
            DynTrace {
                workload_id: self.spec.id.clone(),
                trace_idx: 0,
                start,
                instrs: self.instrs[s..e].to_vec(),
            }
        }
    }

    fn fixed(id: &str, n: usize) -> Arc<dyn TraceProvider> {
        let instrs: Vec<Instruction> = (0..n)
            .map(|i| {
                Instruction::compute(
                    0x1000 + 4 * i as u64,
                    crate::OpClass::IntAlu,
                    [Some(1), None],
                    Some(2),
                )
            })
            .collect();
        Arc::new(Fixed {
            spec: WorkloadSpec::single_phase(
                id,
                "fixed",
                WorkloadClass::Real,
                7,
                1,
                n as u64,
                OpMix::int_heavy(),
                MemProfile::resident(4096),
                BranchProfile::predictable(),
                CodeShape::kernel(),
            ),
            instrs,
        })
    }

    #[test]
    fn suite_ids_resolve_without_registration() {
        let r = resolve_workload("S5").expect("suite id");
        assert_eq!(r.spec().id, "S5");
        assert!(matches!(r, ResolvedWorkload::Suite(_)));
        // Suite resolution matches generate_region bitwise.
        let a = r.materialize(0, 0, 512);
        let b = generate_region(by_id_ref("S5").unwrap(), 0, 0, 512);
        assert_eq!(a.instrs, b.instrs);
    }

    #[test]
    fn unknown_ids_error_with_context() {
        let e = resolve_workload("test-dyn:nope/zz").unwrap_err();
        assert!(e.contains("unknown workload"), "{e}");
    }

    #[test]
    fn registered_provider_resolves_and_truncates() {
        register_provider(fixed("test-dyn:fixed-a", 100));
        let r = resolve_workload("test-dyn:fixed-a").expect("registered");
        assert_eq!(r.spec().trace_len, 100);
        assert_eq!(r.materialize(0, 0, 64).len(), 64);
        assert_eq!(r.materialize(0, 90, 64).len(), 10, "truncated past end");
        assert_eq!(r.materialize(0, 1000, 64).len(), 0, "empty past end");
        assert!(dynamic_ids().contains(&"test-dyn:fixed-a".to_string()));
    }

    #[test]
    fn prefix_resolver_runs_once_and_caches() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        register_resolver("test-lazy:", |id| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            if id.ends_with("bad") {
                return Err("deliberately unresolvable".to_string());
            }
            Ok(fixed(id, 32))
        });
        let before = CALLS.load(Ordering::SeqCst);
        let a = resolve_workload("test-lazy:x").expect("resolves");
        let b = resolve_workload("test-lazy:x").expect("cached");
        assert_eq!(a.spec().id, b.spec().id);
        assert_eq!(
            CALLS.load(Ordering::SeqCst),
            before + 1,
            "resolver must run once per id"
        );
        let e = resolve_workload("test-lazy:bad").unwrap_err();
        assert!(e.contains("unresolvable"));
        // Failures are not cached as providers; they re-resolve (and
        // re-fail) on the next attempt.
        let _ = resolve_workload("test-lazy:bad").unwrap_err();
    }

    #[test]
    fn registered_resolution_never_runs_resolvers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        register_resolver("test-reg-only:", |id| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            Ok(fixed(id, 8))
        });
        assert!(resolve_registered("S5").is_some(), "suite ids pass");
        // An unseen id with a matching resolver is NOT resolved — no I/O,
        // no execution — until resolve_workload is asked for it.
        assert!(resolve_registered("test-reg-only:x").is_none());
        assert_eq!(CALLS.load(Ordering::SeqCst), 0);
        resolve_workload("test-reg-only:x").expect("full resolve");
        assert!(resolve_registered("test-reg-only:x").is_some(), "now cached");
    }

    #[test]
    fn resolved_provider_cache_is_bounded_and_pinned_entries_survive() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        register_resolver("test-evict:", |id| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            Ok(fixed(id, 4))
        });
        register_provider(fixed("test-evict:pinned", 4));
        // Sweep far past the cap, as a hostile client probing distinct
        // budgets would; residency must stay bounded.
        for i in 0..(RESOLVED_PROVIDER_CAP + 8) {
            resolve_workload(&format!("test-evict:n{i}")).expect("resolves");
        }
        let resident = dynamic_ids()
            .iter()
            .filter(|i| i.starts_with("test-evict:n"))
            .count();
        assert!(
            resident <= RESOLVED_PROVIDER_CAP,
            "{resident} resolver-built providers resident, cap is {RESOLVED_PROVIDER_CAP}"
        );
        assert!(
            dynamic_ids().contains(&"test-evict:pinned".to_string()),
            "pinned registration must survive resolver churn"
        );
        // An evicted id re-resolves transparently (the resolver runs again
        // and, being deterministic, rebuilds the same provider).
        let before = CALLS.load(Ordering::SeqCst);
        let r = resolve_workload("test-evict:n0").expect("re-resolves");
        assert_eq!(r.spec().id, "test-evict:n0");
        assert_eq!(CALLS.load(Ordering::SeqCst), before + 1, "n0 was rebuilt");
    }

    #[test]
    fn distinct_ids_build_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::{Duration, Instant};
        static ARRIVED: AtomicUsize = AtomicUsize::new(0);
        // Each build blocks until BOTH ids have entered their resolver: if
        // cold-path construction were serialized process-wide (the old
        // single build mutex), the second build could never start and the
        // first would time out — failing, not hanging, the test.
        register_resolver("test-conc:", |id| {
            ARRIVED.fetch_add(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(10);
            while ARRIVED.load(Ordering::SeqCst) < 2 {
                if Instant::now() > deadline {
                    return Err("builds serialized: the other id never started".to_string());
                }
                std::thread::yield_now();
            }
            Ok(fixed(id, 8))
        });
        let a = std::thread::spawn(|| resolve_workload("test-conc:a"));
        let b = std::thread::spawn(|| resolve_workload("test-conc:b"));
        a.join().unwrap().expect("id a resolves");
        b.join().unwrap().expect("id b resolves");
    }
}
