//! Static program construction and dynamic trace generation.
//!
//! Generation is two-staged, mirroring how a real binary produces a trace:
//!
//! 1. [`build_static_program`] turns a [`WorkloadSpec`] into a fixed CFG of
//!    basic blocks with register assignments, memory patterns and branch
//!    behaviours (deterministic in `(spec.seed, trace_idx)`).
//! 2. [`generate_region`] walks the CFG to emit dynamic instructions. Traces
//!    are divided into fixed [`SEGMENT_LEN`]-instruction segments; the walker
//!    state is re-seeded per segment from `(spec.seed, trace_idx, segment)`,
//!    so any region `[start, start+len)` of a virtual multi-million-instruction
//!    trace can be materialized in `O(len)` without generating the prefix.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::instruction::{BranchKind, Instruction, OpClass, RegId};
use crate::pattern::{AddressPattern, PatternState};
use crate::program::{BasicBlock, BlockId, BranchBehavior, StaticOp, StaticProgram, Terminator};
use crate::region::DynTrace;
use crate::workload::{PhaseSpec, WorkloadSpec};

/// Number of instructions per independently seeded trace segment.
pub const SEGMENT_LEN: u64 = 4096;

/// Number of memory-address patterns instantiated per phase.
const PATTERNS_PER_PHASE: usize = 12;

/// Base of the synthetic data segment; each phase gets a disjoint 256 MB arena.
const DATA_BASE: u64 = 0x1_0000_0000;
const PHASE_ARENA: u64 = 256 << 20;

/// Registers reserved for pointer-chase chains (serial dependent loads).
const CHASE_REGS: [RegId; 4] = [24, 25, 26, 27];

fn mix_weights(phase: &PhaseSpec) -> [(OpClass, f32); 9] {
    let m = phase.mix;
    [
        (OpClass::IntAlu, m.alu),
        (OpClass::IntMul, m.mul),
        (OpClass::IntDiv, m.div),
        (OpClass::FpAlu, m.fp_alu),
        (OpClass::FpMul, m.fp_mul),
        (OpClass::FpDiv, m.fp_div),
        (OpClass::Load, m.load),
        (OpClass::Store, m.store),
        (OpClass::Nop, m.nop),
    ]
}

fn sample_weighted<T: Copy>(items: &[(T, f32)], rng: &mut ChaCha12Rng) -> T {
    let total: f32 = items.iter().map(|(_, w)| w.max(0.0)).sum();
    let mut x = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for &(item, w) in items {
        let w = w.max(0.0);
        if x < w {
            return item;
        }
        x -= w;
    }
    items[items.len() - 1].0
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic sub-seed derivation.
fn derive_seed(parts: &[u64]) -> u64 {
    let mut acc = 0x5bd1_e995u64;
    for &p in parts {
        acc = splitmix(acc ^ p);
    }
    acc
}

fn build_phase_patterns(
    phase_idx: usize,
    phase: &PhaseSpec,
    rng: &mut ChaCha12Rng,
) -> Vec<AddressPattern> {
    let arena = DATA_BASE + phase_idx as u64 * PHASE_ARENA;
    let wss = phase.mem.wss_bytes.max(1024);
    let stack_wss = wss.min(16 * 1024);
    let stack_base = arena + PHASE_ARENA / 2;
    let fams = [
        (0u8, phase.mem.seq_w),
        (1, phase.mem.strided_w),
        (2, phase.mem.random_w),
        (3, phase.mem.chase_w),
        (4, phase.mem.stack_w),
    ];
    (0..PATTERNS_PER_PHASE)
        .map(|_| match sample_weighted(&fams, rng) {
            0 => AddressPattern::Sequential { base: arena, wss },
            1 => AddressPattern::Strided {
                base: arena,
                wss,
                stride: phase.mem.stride_bytes.max(64),
            },
            2 => AddressPattern::Random { base: arena, wss },
            3 => AddressPattern::PointerChase { base: arena, wss },
            _ => AddressPattern::Stack {
                base: stack_base,
                wss: stack_wss,
            },
        })
        .collect()
}

fn sample_behavior(spec: &WorkloadSpec, rng: &mut ChaCha12Rng) -> BranchBehavior {
    let b = spec.branch;
    let kinds = [
        (0u8, b.biased_w),
        (1, b.loop_w),
        (2, b.periodic_w),
        (3, b.random_w),
    ];
    match sample_weighted(&kinds, rng) {
        0 => {
            let p = rng.gen_range(0.9f32..0.99);
            BranchBehavior::Biased {
                taken_prob: if rng.gen_bool(0.5) { p } else { 1.0 - p },
            }
        }
        1 => {
            let lo = (b.avg_trip / 2).max(2);
            let hi = (b.avg_trip.saturating_mul(2)).max(lo + 1);
            BranchBehavior::Loop {
                trip: rng.gen_range(lo..=hi),
            }
        }
        2 => BranchBehavior::Periodic {
            pattern: rng.gen::<u32>(),
            period: rng.gen_range(3..=16),
        },
        _ => BranchBehavior::Biased {
            taken_prob: rng.gen_range(0.3f32..0.7),
        },
    }
}

fn pick_reg(fp: bool, rng: &mut ChaCha12Rng) -> RegId {
    if fp {
        rng.gen_range(32..60)
    } else {
        rng.gen_range(0..24)
    }
}

/// Builds the deterministic static CFG for trace `trace_idx` of `spec`.
///
/// Blocks are partitioned contiguously among phases; every block's branch
/// targets stay within its phase group, so the dynamic walker remains in the
/// phase's working set until the segment schedule switches phases.
pub fn build_static_program(spec: &WorkloadSpec, trace_idx: u32) -> StaticProgram {
    let mut rng = ChaCha12Rng::seed_from_u64(derive_seed(&[spec.seed, trace_idx as u64, 0xC0DE]));
    let n_phases = spec.phases.len().max(1);
    let blocks_per_phase = (spec.code.n_blocks as usize / n_phases).max(2);
    let total_blocks = blocks_per_phase * n_phases;

    let mut patterns = Vec::new();
    let mut phase_pattern_ranges = Vec::new();
    for (pi, phase) in spec.phases.iter().enumerate() {
        let start = patterns.len();
        patterns.extend(build_phase_patterns(pi, phase, &mut rng));
        phase_pattern_ranges.push(start..patterns.len());
    }

    let mut blocks = Vec::with_capacity(total_blocks);
    let mut pc = spec.code.code_base;
    let mut chase_cursor = 0usize;

    #[allow(clippy::needless_range_loop)] // phase_idx indexes two parallel arrays
    for phase_idx in 0..n_phases {
        let phase = &spec.phases[phase_idx];
        let weights = mix_weights(phase);
        let prange = phase_pattern_ranges[phase_idx].clone();
        let lo_id = (phase_idx * blocks_per_phase) as BlockId;
        let hi_id = lo_id + blocks_per_phase as BlockId;

        for local in 0..blocks_per_phase {
            let id = lo_id + local as BlockId;
            let next_in_phase = if id + 1 < hi_id { id + 1 } else { lo_id };
            let len_lo = (spec.code.avg_block_len / 2).max(1);
            let len_hi = (spec.code.avg_block_len * 3 / 2).max(len_lo + 1);
            let n_ops = rng.gen_range(len_lo..=len_hi) as usize;

            let mut ops = Vec::with_capacity(n_ops);
            let mut last_dst: Option<RegId> = None;
            for _ in 0..n_ops {
                let op = sample_weighted(&weights, &mut rng);
                let chain = last_dst.filter(|_| rng.gen::<f32>() < spec.chain_frac);
                let (srcs, dst, pattern_idx) = match op {
                    OpClass::Load => {
                        let pidx = rng.gen_range(prange.clone());
                        if matches!(patterns[pidx], AddressPattern::PointerChase { .. }) {
                            // Serial chase: the load's address register is its own
                            // destination, creating a dependent-miss chain.
                            let creg = CHASE_REGS[chase_cursor % CHASE_REGS.len()];
                            chase_cursor += 1;
                            ([Some(creg), None], Some(creg), pidx as u32)
                        } else {
                            let addr_reg = chain.unwrap_or_else(|| pick_reg(false, &mut rng));
                            (
                                [Some(addr_reg), None],
                                Some(pick_reg(false, &mut rng)),
                                pidx as u32,
                            )
                        }
                    }
                    OpClass::Store => {
                        let pidx = rng.gen_range(prange.clone());
                        let data = chain.unwrap_or_else(|| pick_reg(false, &mut rng));
                        (
                            [Some(data), Some(pick_reg(false, &mut rng))],
                            None,
                            pidx as u32,
                        )
                    }
                    OpClass::Nop => ([None, None], None, u32::MAX),
                    other => {
                        let fp = other.is_fp();
                        let a = chain.unwrap_or_else(|| pick_reg(fp, &mut rng));
                        let b = if rng.gen_bool(0.7) {
                            Some(pick_reg(fp, &mut rng))
                        } else {
                            None
                        };
                        ([Some(a), b], Some(pick_reg(fp, &mut rng)), u32::MAX)
                    }
                };
                if let Some(d) = dst {
                    last_dst = Some(d);
                }
                ops.push(StaticOp {
                    op,
                    srcs,
                    dst,
                    pattern_idx,
                });
            }

            // Terminator.
            let b = spec.branch;
            let kinds = [
                (0u8, b.cond_frac),
                (1, b.uncond_frac),
                (2, b.indirect_frac),
                (
                    3,
                    (1.0 - b.cond_frac - b.uncond_frac - b.indirect_frac).max(0.0),
                ),
            ];
            let terminator = match sample_weighted(&kinds, &mut rng) {
                0 => {
                    let behavior = sample_behavior(spec, &mut rng);
                    // Loop back-edges target an earlier (or same) block so that
                    // "taken" really forms a loop; other conditionals jump anywhere
                    // within the phase.
                    let target = if matches!(behavior, BranchBehavior::Loop { .. }) {
                        rng.gen_range(lo_id..=id)
                    } else {
                        rng.gen_range(lo_id..hi_id)
                    };
                    Terminator::CondBranch {
                        behavior,
                        target,
                        fall: next_in_phase,
                    }
                }
                1 => Terminator::Jump {
                    target: rng.gen_range(lo_id..hi_id),
                },
                2 => {
                    let n = b.indirect_targets.max(2) as usize;
                    let targets = (0..n).map(|_| rng.gen_range(lo_id..hi_id)).collect();
                    Terminator::IndirectBranch { targets }
                }
                _ => Terminator::FallThrough {
                    next: next_in_phase,
                },
            };

            let dyn_len =
                ops.len() + usize::from(!matches!(terminator, Terminator::FallThrough { .. }));
            blocks.push(BasicBlock {
                base_pc: pc,
                ops,
                terminator,
                phase: phase_idx as u8,
            });
            pc += dyn_len as u64 * 4;
        }
    }

    let code_bytes = pc - spec.code.code_base;
    let phase_entries = (0..n_phases)
        .map(|p| (p * blocks_per_phase) as BlockId)
        .collect();
    StaticProgram {
        blocks,
        phase_entries,
        patterns,
        code_bytes,
    }
}

/// Per-segment dynamic walker state.
struct Walker<'a> {
    prog: &'a StaticProgram,
    rng: ChaCha12Rng,
    pattern_states: Vec<PatternState>,
    branch_counts: Vec<u32>,
    cur: BlockId,
    op_idx: usize,
    isb_prob: f64,
}

impl<'a> Walker<'a> {
    fn new(prog: &'a StaticProgram, spec: &WorkloadSpec, phase: u8, seed: u64) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let pattern_states = prog
            .patterns
            .iter()
            .map(|p| PatternState::seeded(p, &mut rng))
            .collect();
        let n_phases = prog.phase_entries.len() as u32;
        let blocks_per_phase = prog.blocks.len() as u32 / n_phases.max(1);
        let entry = prog.entry(phase);
        let cur = entry + rng.gen_range(0..blocks_per_phase.max(1));
        Walker {
            prog,
            rng,
            pattern_states,
            branch_counts: vec![0; prog.blocks.len()],
            cur,
            op_idx: 0,
            isb_prob: f64::from(spec.isb_per_kinstr) / 1000.0,
        }
    }

    fn decide(&mut self, behavior: BranchBehavior, count: u32) -> bool {
        match behavior {
            BranchBehavior::Biased { taken_prob } => self.rng.gen::<f32>() < taken_prob,
            BranchBehavior::Loop { trip } => {
                let t = trip.max(1) as u32;
                count % t != t - 1
            }
            BranchBehavior::Periodic { pattern, period } => {
                let p = period.clamp(1, 32) as u32;
                (pattern >> (count % p)) & 1 == 1
            }
        }
    }

    /// Emits the next dynamic instruction.
    fn next_instr(&mut self) -> Instruction {
        loop {
            let block = &self.prog.blocks[self.cur as usize];
            if self.op_idx < block.ops.len() {
                let op = block.ops[self.op_idx];
                let pc = block.base_pc + self.op_idx as u64 * 4;
                self.op_idx += 1;
                if self.isb_prob > 0.0 && self.rng.gen_bool(self.isb_prob) {
                    return Instruction::compute(pc, OpClass::Isb, [None, None], None);
                }
                let instr = match op.op {
                    OpClass::Load | OpClass::Store => {
                        let pat = &self.prog.patterns[op.pattern_idx as usize];
                        let addr = self.pattern_states[op.pattern_idx as usize]
                            .next_addr(pat, &mut self.rng);
                        Instruction {
                            pc,
                            op: op.op,
                            srcs: op.srcs,
                            dst: op.dst,
                            mem_addr: addr,
                            taken: false,
                            target: 0,
                        }
                    }
                    other => Instruction::compute(pc, other, op.srcs, op.dst),
                };
                return instr;
            }

            // Terminator.
            let branch_pc = block.base_pc + block.ops.len() as u64 * 4;
            let count = self.branch_counts[self.cur as usize];
            self.branch_counts[self.cur as usize] = count.wrapping_add(1);
            self.op_idx = 0;
            match block.terminator.clone() {
                Terminator::FallThrough { next } => {
                    self.cur = next;
                    // No instruction emitted; continue with the next block.
                }
                Terminator::Jump { target } => {
                    let tpc = self.prog.blocks[target as usize].base_pc;
                    self.cur = target;
                    return Instruction::branch(
                        branch_pc,
                        BranchKind::DirectUncond,
                        [None, None],
                        true,
                        tpc,
                    );
                }
                Terminator::CondBranch {
                    behavior,
                    target,
                    fall,
                } => {
                    let taken = self.decide(behavior, count);
                    let next = if taken { target } else { fall };
                    let tpc = self.prog.blocks[target as usize].base_pc;
                    self.cur = next;
                    return Instruction::branch(
                        branch_pc,
                        BranchKind::DirectCond,
                        [Some(pick_src_flag(count)), None],
                        taken,
                        tpc,
                    );
                }
                Terminator::IndirectBranch { targets } => {
                    let t = targets[self.rng.gen_range(0..targets.len())];
                    let tpc = self.prog.blocks[t as usize].base_pc;
                    self.cur = t;
                    return Instruction::branch(
                        branch_pc,
                        BranchKind::Indirect,
                        [Some(30), None],
                        true,
                        tpc,
                    );
                }
            }
        }
    }
}

/// Flag-producing register for conditional branches: conditions depend on a
/// rotating small set of integer registers, creating realistic compute→branch
/// dependencies without tracking real flags.
fn pick_src_flag(count: u32) -> RegId {
    (count % 8) as RegId
}

/// Generates the dynamic instructions of region `[start, start + len)` of trace
/// `trace_idx` of `spec`.
///
/// Deterministic: identical arguments always produce an identical trace, and
/// overlapping regions of the same trace share their overlapping instructions
/// (segment-aligned), which is what makes the paper's train/test overlap study
/// (Figure 4) meaningful.
///
/// # Examples
///
/// ```
/// let spec = concorde_trace::by_id("O1").unwrap();
/// let region = concorde_trace::generate_region(&spec, 0, 0, 1000);
/// assert_eq!(region.instrs.len(), 1000);
/// ```
pub fn generate_region(spec: &WorkloadSpec, trace_idx: u32, start: u64, len: usize) -> DynTrace {
    let prog = build_static_program(spec, trace_idx);
    let n_phases = spec.phases.len().max(1) as u64;
    let mut instrs = Vec::with_capacity(len);

    let mut seg = start / SEGMENT_LEN;
    let mut skip = (start % SEGMENT_LEN) as usize;
    while instrs.len() < len {
        let phase = ((seg * SEGMENT_LEN / spec.phase_len.max(1)) % n_phases) as u8;
        let seed = derive_seed(&[spec.seed, trace_idx as u64, seg, 0x5E6]);
        let mut walker = Walker::new(&prog, spec, phase, seed);
        let mut emitted = 0u64;
        while emitted < SEGMENT_LEN && instrs.len() < len {
            let instr = walker.next_instr();
            emitted += 1;
            if skip > 0 {
                skip -= 1;
            } else {
                instrs.push(instr);
            }
        }
        seg += 1;
    }

    DynTrace {
        workload_id: spec.id.clone(),
        trace_idx,
        start,
        instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{by_id, suite};

    #[test]
    fn generation_is_deterministic() {
        let spec = by_id("S5").unwrap();
        let a = generate_region(&spec, 1, 8192, 2000);
        let b = generate_region(&spec, 1, 8192, 2000);
        assert_eq!(a.instrs, b.instrs);
    }

    #[test]
    fn overlapping_regions_share_instructions() {
        let spec = by_id("S8").unwrap();
        let a = generate_region(&spec, 0, 0, (SEGMENT_LEN * 2) as usize);
        let b = generate_region(&spec, 0, SEGMENT_LEN, (SEGMENT_LEN * 2) as usize);
        // The second half of `a` equals the first half of `b`.
        assert_eq!(
            a.instrs[SEGMENT_LEN as usize..],
            b.instrs[..SEGMENT_LEN as usize]
        );
    }

    #[test]
    fn different_traces_differ() {
        let spec = by_id("S2").unwrap();
        let a = generate_region(&spec, 0, 0, 1000);
        let b = generate_region(&spec, 1, 0, 1000);
        assert_ne!(a.instrs, b.instrs);
    }

    #[test]
    fn unaligned_start_is_consistent_with_aligned_generation() {
        let spec = by_id("O2").unwrap();
        let aligned = generate_region(&spec, 0, 0, 600);
        let offset = generate_region(&spec, 0, 100, 500);
        assert_eq!(&aligned.instrs[100..600], &offset.instrs[..]);
    }

    #[test]
    fn mix_roughly_matches_spec() {
        let spec = by_id("P5").unwrap(); // Video: FP heavy
        let t = generate_region(&spec, 0, 0, 20_000);
        let fp = t.instrs.iter().filter(|i| i.op.is_fp()).count() as f64 / t.instrs.len() as f64;
        assert!(fp > 0.2, "FP fraction {fp} too low for a video workload");
        let loads =
            t.instrs.iter().filter(|i| i.op.is_load()).count() as f64 / t.instrs.len() as f64;
        assert!(loads > 0.05 && loads < 0.6);
    }

    #[test]
    fn chase_loads_are_self_dependent() {
        let spec = by_id("S1").unwrap(); // mcf: pointer chasing
        let t = generate_region(&spec, 0, 0, 20_000);
        let self_dep = t
            .instrs
            .iter()
            .filter(|i| i.op.is_load() && i.dst.is_some() && i.srcs[0] == i.dst)
            .count();
        assert!(
            self_dep > 100,
            "expected many self-dependent chase loads, got {self_dep}"
        );
    }

    #[test]
    fn branches_present_with_targets() {
        let spec = by_id("S4").unwrap();
        let t = generate_region(&spec, 0, 0, 10_000);
        let branches: Vec<_> = t.instrs.iter().filter(|i| i.op.is_branch()).collect();
        assert!(
            branches.len() > 500,
            "leela should be branchy, got {}",
            branches.len()
        );
        for b in &branches {
            assert!(b.target != 0);
        }
        let taken = branches.iter().filter(|b| b.taken).count() as f64 / branches.len() as f64;
        assert!(taken > 0.2 && taken < 0.95, "taken rate {taken}");
    }

    #[test]
    fn code_footprints_ordered_by_shape() {
        let small = build_static_program(&by_id("O1").unwrap(), 0);
        let large = build_static_program(&by_id("S10").unwrap(), 0);
        assert!(large.code_bytes > 4 * small.code_bytes);
    }

    #[test]
    fn all_suite_workloads_generate() {
        for spec in suite() {
            let t = generate_region(&spec, 0, 0, 512);
            assert_eq!(t.instrs.len(), 512, "{}", spec.id);
            assert!(
                t.instrs.iter().any(|i| i.op.is_load()),
                "{} has no loads",
                spec.id
            );
        }
    }

    #[test]
    fn isb_injection_respects_rate() {
        let spec = by_id("O4").unwrap();
        let t = generate_region(&spec, 0, 0, 50_000);
        let isbs = t.instrs.iter().filter(|i| i.op == OpClass::Isb).count();
        assert!(isbs > 0, "O4 specifies ISBs");
        let none = by_id("S5").unwrap();
        let t2 = generate_region(&none, 0, 0, 50_000);
        assert_eq!(t2.instrs.iter().filter(|i| i.op == OpClass::Isb).count(), 0);
    }
}
