//! Dynamic instruction representation.
//!
//! A [`Instruction`] is one executed (dynamic) instruction as it would appear in a
//! DynamoRIO `drmemtrace` capture: program counter, operation class, architectural
//! register operands, the effective address of a memory access, and the outcome of
//! a branch. This is exactly the signal set Concorde's trace analysis consumes
//! (paper §3.1); no opcode semantics are retained.

use serde::{Deserialize, Serialize};

/// Cache line size used throughout the workspace (bytes).
pub const LINE_BYTES: u64 = 64;

/// Architectural register identifier.
///
/// Registers `0..32` are the integer file, `32..64` the floating-point file.
/// The zero register (`XZR`-like) is *not* modelled; every id is a real register.
pub type RegId = u8;

/// Number of architectural registers (integer + floating point files).
pub const NUM_REGS: usize = 64;

/// Branch instruction categories distinguished by trace analysis (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Direct branch with an always-taken, statically known target (e.g. `B`, `BL`).
    DirectUncond,
    /// Direct conditional branch (e.g. `B.cond`, `CBZ`).
    DirectCond,
    /// Indirect branch whose target comes from a register (e.g. `BR`, `RET`).
    Indirect,
}

/// Operation class of a dynamic instruction.
///
/// The class determines the execution unit (and hence which issue-width and pipe
/// parameters of Table 1 constrain it) and the fixed execution latency estimate
/// used by trace analysis for non-memory instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU operation (add, logical, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, typically unpipelined).
    IntDiv,
    /// Floating-point add/compare/convert.
    FpAlu,
    /// Floating-point multiply (and fused multiply-add).
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer; the payload distinguishes the paper's three categories.
    Branch(BranchKind),
    /// Instruction synchronization barrier (`ISB`): serializes the pipeline.
    Isb,
    /// No-operation (also used for moves eliminated at rename).
    Nop,
}

impl OpClass {
    /// Returns `true` for [`OpClass::Load`].
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, OpClass::Load)
    }

    /// Returns `true` for [`OpClass::Store`].
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, OpClass::Store)
    }

    /// Returns `true` for any memory operation.
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for any branch.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch(_))
    }

    /// Returns `true` if the instruction executes on a floating-point unit.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Fixed execution latency (cycles) for non-memory classes, mirroring the
    /// paper's opcode-based estimates ("e.g., 3 cycles for integer ALU
    /// operations"). Loads are resolved through cache simulation instead and
    /// return the L1 hit latency here as a placeholder.
    #[inline]
    pub fn base_latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 18,
            OpClass::FpAlu => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 16,
            OpClass::Load => 4,
            OpClass::Store => 1,
            OpClass::Branch(_) => 1,
            OpClass::Isb => 1,
            OpClass::Nop => 1,
        }
    }
}

/// One dynamic instruction of a trace region.
///
/// # Examples
///
/// ```
/// use concorde_trace::{Instruction, OpClass};
///
/// let ld = Instruction::load(0x4000, 0x1_0040, [Some(3), None], Some(5));
/// assert_eq!(ld.op, OpClass::Load);
/// assert_eq!(ld.data_line(), 0x1_0040 / 64);
/// assert_eq!(ld.icache_line(), 0x4000 / 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Program counter of this instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Source register operands (up to two).
    pub srcs: [Option<RegId>; 2],
    /// Destination register, if any.
    pub dst: Option<RegId>,
    /// Effective address for loads/stores; `0` otherwise.
    pub mem_addr: u64,
    /// Branch outcome (valid only when `op` is a branch).
    pub taken: bool,
    /// Branch target PC (valid only when `op` is a branch and `taken`).
    pub target: u64,
}

impl Instruction {
    /// Creates a non-memory, non-branch instruction.
    pub fn compute(pc: u64, op: OpClass, srcs: [Option<RegId>; 2], dst: Option<RegId>) -> Self {
        Instruction {
            pc,
            op,
            srcs,
            dst,
            mem_addr: 0,
            taken: false,
            target: 0,
        }
    }

    /// Creates a load from `addr`.
    pub fn load(pc: u64, addr: u64, srcs: [Option<RegId>; 2], dst: Option<RegId>) -> Self {
        Instruction {
            pc,
            op: OpClass::Load,
            srcs,
            dst,
            mem_addr: addr,
            taken: false,
            target: 0,
        }
    }

    /// Creates a store to `addr`.
    pub fn store(pc: u64, addr: u64, srcs: [Option<RegId>; 2]) -> Self {
        Instruction {
            pc,
            op: OpClass::Store,
            srcs,
            dst: None,
            mem_addr: addr,
            taken: false,
            target: 0,
        }
    }

    /// Creates a branch with the given outcome and target.
    pub fn branch(
        pc: u64,
        kind: BranchKind,
        srcs: [Option<RegId>; 2],
        taken: bool,
        target: u64,
    ) -> Self {
        Instruction {
            pc,
            op: OpClass::Branch(kind),
            srcs,
            dst: None,
            mem_addr: 0,
            taken,
            target,
        }
    }

    /// Data-cache line index touched by this instruction (valid for memory ops).
    #[inline]
    pub fn data_line(&self) -> u64 {
        self.mem_addr / LINE_BYTES
    }

    /// Instruction-cache line index holding this instruction.
    #[inline]
    pub fn icache_line(&self) -> u64 {
        self.pc / LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_predicates() {
        assert!(OpClass::Load.is_load());
        assert!(OpClass::Load.is_mem());
        assert!(!OpClass::Load.is_store());
        assert!(OpClass::Store.is_mem());
        assert!(OpClass::Branch(BranchKind::DirectCond).is_branch());
        assert!(OpClass::FpMul.is_fp());
        assert!(!OpClass::IntMul.is_fp());
        assert!(!OpClass::Isb.is_branch());
    }

    #[test]
    fn latencies_are_positive_and_ordered() {
        assert!(OpClass::IntDiv.base_latency() > OpClass::IntMul.base_latency());
        assert!(OpClass::IntMul.base_latency() > OpClass::IntAlu.base_latency());
        assert!(OpClass::FpDiv.base_latency() > OpClass::FpMul.base_latency());
        for op in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::FpAlu,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch(BranchKind::Indirect),
            OpClass::Isb,
            OpClass::Nop,
        ] {
            assert!(op.base_latency() >= 1);
        }
    }

    #[test]
    fn line_indices() {
        let i = Instruction::load(0x1000, 0x2040, [None, None], Some(1));
        assert_eq!(i.icache_line(), 0x1000 / 64);
        assert_eq!(i.data_line(), 0x2040 / 64);
        let b = Instruction::branch(0x1004, BranchKind::DirectCond, [None, None], true, 0x900);
        assert!(b.taken);
        assert_eq!(b.target, 0x900);
    }
}
