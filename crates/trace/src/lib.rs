//! # concorde-trace
//!
//! Synthetic workload and instruction-trace generation for the Concorde
//! reproduction: a deterministic substitute for DynamoRIO `drmemtrace` captures
//! of the paper's 29-program corpus (Table 2).
//!
//! The crate models each program statistically — instruction mix, memory
//! access patterns and working-set size, branch behaviour, static code shape,
//! and phase schedule — and materializes dynamic instruction regions on demand:
//!
//! ```
//! use concorde_trace::{by_id, generate_region};
//!
//! // 505.mcf_r-like pointer-chasing workload, trace 0, first 10k instructions.
//! let spec = by_id("S1").unwrap();
//! let region = generate_region(&spec, 0, 0, 10_000);
//! assert_eq!(region.len(), 10_000);
//! let loads = region.count_matching(|i| i.op.is_load());
//! assert!(loads > 1_000);
//! ```
//!
//! Determinism contract: traces are split into [`generator::SEGMENT_LEN`]-sized
//! segments seeded by `(workload seed, trace index, segment index)`. The same
//! region reference always yields byte-identical instructions, and overlapping
//! regions of one trace share their overlap — which is what makes train/test
//! overlap accounting (paper Figure 4) well defined.

#![warn(missing_docs)]

pub mod dynamic;
pub mod generator;
pub mod instruction;
pub mod pattern;
pub mod program;
pub mod region;
pub mod workload;

pub use dynamic::{
    dynamic_ids, register_provider, register_resolver, resolve_registered, resolve_workload,
    ResolvedWorkload, TraceProvider, RESOLVED_PROVIDER_CAP,
};
pub use generator::{build_static_program, generate_region, SEGMENT_LEN};
pub use instruction::{BranchKind, Instruction, OpClass, RegId, LINE_BYTES, NUM_REGS};
pub use pattern::AddressPattern;
pub use program::{BasicBlock, BlockId, BranchBehavior, StaticProgram, Terminator};
pub use region::{sample_region, DynTrace, RegionRef};
pub use workload::{
    by_id, by_id_ref, suite, suite_cached, BranchProfile, CodeShape, MemProfile, OpMix, PhaseSpec,
    WorkloadClass, WorkloadSpec,
};
