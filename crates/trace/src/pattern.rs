//! Memory address generators.
//!
//! Every static memory instruction in a synthetic program is bound to one
//! [`AddressPattern`]. At trace-generation time each pattern owns a small piece of
//! mutable [`PatternState`] that deterministically produces the next effective
//! address. The four families cover the access behaviours that drive cache and
//! memory-level-parallelism effects in the paper's workloads: streaming
//! (sequential), regular strided, uniform random over a working set, and
//! dependent pointer chasing.

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::instruction::LINE_BYTES;

/// A static memory-access pattern, fixed at program-construction time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AddressPattern {
    /// Streaming access: consecutive lines of a buffer of `wss` bytes, starting
    /// at `base`, wrapping at the end.
    Sequential {
        /// Buffer base address.
        base: u64,
        /// Buffer size in bytes; the stream wraps modulo this size.
        wss: u64,
    },
    /// Strided access with the given byte stride over a `wss`-byte buffer.
    Strided {
        /// Buffer base address.
        base: u64,
        /// Buffer size in bytes.
        wss: u64,
        /// Byte stride between successive accesses.
        stride: u64,
    },
    /// Uniform random line within a `wss`-byte working set.
    Random {
        /// Buffer base address.
        base: u64,
        /// Working set size in bytes.
        wss: u64,
    },
    /// Pointer chase across the lines of a `wss`-byte buffer. Successive
    /// addresses follow a full-period linear-congruential walk over the line
    /// space, which is deterministic and uncacheable by stride prefetchers —
    /// the classic `mcf`-style dependent-load behaviour.
    PointerChase {
        /// Buffer base address.
        base: u64,
        /// Working set size in bytes (number of chased lines = `wss / 64`).
        wss: u64,
    },
    /// Small, hot stack-like region (`wss` bytes) accessed at random; models
    /// spills/locals that essentially always hit in L1.
    Stack {
        /// Stack segment base.
        base: u64,
        /// Hot region size in bytes.
        wss: u64,
    },
}

impl AddressPattern {
    /// Working set size of this pattern in bytes.
    pub fn wss(&self) -> u64 {
        match *self {
            AddressPattern::Sequential { wss, .. }
            | AddressPattern::Strided { wss, .. }
            | AddressPattern::Random { wss, .. }
            | AddressPattern::PointerChase { wss, .. }
            | AddressPattern::Stack { wss, .. } => wss,
        }
    }
}

/// Mutable per-pattern cursor advanced once per dynamic access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternState {
    /// Current position (bytes for sequential/strided; line index for chase).
    pos: u64,
}

impl PatternState {
    /// Creates a state whose starting position is derived from `rng`, so that
    /// different trace segments begin at different phases of the pattern.
    pub fn seeded(pattern: &AddressPattern, rng: &mut ChaCha12Rng) -> Self {
        let span = pattern.wss().max(LINE_BYTES);
        PatternState {
            pos: rng.gen_range(0..span / LINE_BYTES),
        }
    }

    /// Produces the next effective address for `pattern` and advances the cursor.
    pub fn next_addr(&mut self, pattern: &AddressPattern, rng: &mut ChaCha12Rng) -> u64 {
        match *pattern {
            AddressPattern::Sequential { base, wss } => {
                let lines = (wss / LINE_BYTES).max(1);
                let addr = base + (self.pos % lines) * LINE_BYTES;
                self.pos = self.pos.wrapping_add(1);
                addr
            }
            AddressPattern::Strided { base, wss, stride } => {
                let span = wss.max(LINE_BYTES);
                let addr = base + (self.pos * stride) % span;
                self.pos = self.pos.wrapping_add(1);
                addr
            }
            AddressPattern::Random { base, wss } => {
                let lines = (wss / LINE_BYTES).max(1);
                base + rng.gen_range(0..lines) * LINE_BYTES
            }
            AddressPattern::PointerChase { base, wss } => {
                let lines = (wss / LINE_BYTES).max(1);
                // Full-period LCG over [0, lines): pos' = (a*pos + c) mod lines
                // with a-1 divisible by all prime factors of lines when lines is
                // a power of two; we round lines down to a power of two to
                // guarantee the full period.
                let m = lines.next_power_of_two() >> usize::from(!lines.is_power_of_two());
                let m = m.max(1);
                self.pos = (self.pos.wrapping_mul(5).wrapping_add(3)) % m;
                base + self.pos * LINE_BYTES
            }
            AddressPattern::Stack { base, wss } => {
                let lines = (wss / LINE_BYTES).max(1);
                base + rng.gen_range(0..lines) * LINE_BYTES
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(7)
    }

    #[test]
    fn sequential_walks_lines_and_wraps() {
        let p = AddressPattern::Sequential {
            base: 0x1000,
            wss: 256,
        };
        let mut st = PatternState::default();
        let mut r = rng();
        let a: Vec<u64> = (0..6).map(|_| st.next_addr(&p, &mut r)).collect();
        assert_eq!(a, vec![0x1000, 0x1040, 0x1080, 0x10c0, 0x1000, 0x1040]);
    }

    #[test]
    fn strided_respects_stride_and_span() {
        let p = AddressPattern::Strided {
            base: 0,
            wss: 4096,
            stride: 256,
        };
        let mut st = PatternState::default();
        let mut r = rng();
        for i in 0..32u64 {
            let a = st.next_addr(&p, &mut r);
            assert_eq!(a, (i * 256) % 4096);
        }
    }

    #[test]
    fn random_stays_in_working_set() {
        let p = AddressPattern::Random {
            base: 0x10_0000,
            wss: 1 << 16,
        };
        let mut st = PatternState::default();
        let mut r = rng();
        for _ in 0..1000 {
            let a = st.next_addr(&p, &mut r);
            assert!((0x10_0000..0x10_0000 + (1 << 16)).contains(&a));
            assert_eq!(a % LINE_BYTES, 0);
        }
    }

    #[test]
    fn pointer_chase_visits_many_distinct_lines() {
        let p = AddressPattern::PointerChase {
            base: 0,
            wss: 1 << 14,
        }; // 256 lines
        let mut st = PatternState::default();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            seen.insert(st.next_addr(&p, &mut r));
        }
        // Full-period LCG over a power-of-two line count visits a large cycle.
        assert!(seen.len() >= 128, "only {} distinct lines", seen.len());
    }

    #[test]
    fn zero_wss_is_safe() {
        let p = AddressPattern::Random { base: 64, wss: 0 };
        let mut st = PatternState::default();
        let mut r = rng();
        assert_eq!(st.next_addr(&p, &mut r), 64);
    }

    #[test]
    fn seeded_states_differ_across_rngs() {
        let p = AddressPattern::Sequential {
            base: 0,
            wss: 1 << 20,
        };
        let mut r1 = ChaCha12Rng::seed_from_u64(1);
        let mut r2 = ChaCha12Rng::seed_from_u64(2);
        let s1 = PatternState::seeded(&p, &mut r1);
        let s2 = PatternState::seeded(&p, &mut r2);
        assert_ne!(s1, s2);
    }
}
