//! Static program representation.
//!
//! A [`StaticProgram`] is a synthetic control-flow graph: a set of basic blocks,
//! each holding static instruction templates and a terminating branch with a
//! fixed *behaviour* (bias, loop trip count, periodic pattern, …). Walking the
//! CFG with a seeded RNG yields a deterministic dynamic instruction stream whose
//! branch outcomes, code locality, and dependency structure are realistic enough
//! for TAGE, the I-cache, and the dependency analyses to have real signal.

use serde::{Deserialize, Serialize};

use crate::instruction::RegId;
use crate::pattern::AddressPattern;

/// Identifier of a basic block within a [`StaticProgram`].
pub type BlockId = u32;

/// Behaviour of a static conditional/indirect branch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// Taken with fixed probability `taken_prob` (independently each execution).
    Biased {
        /// Probability the branch is taken.
        taken_prob: f32,
    },
    /// Loop back-edge: taken `trip - 1` times, then not-taken once (repeats).
    Loop {
        /// Loop trip count (>= 1).
        trip: u16,
    },
    /// Deterministic periodic pattern: bit `i % period` of `pattern` gives the
    /// outcome. Perfectly predictable by a history-based predictor like TAGE,
    /// poorly predicted by a bimodal table.
    Periodic {
        /// Outcome bits, LSB first.
        pattern: u32,
        /// Period length in executions (1..=32).
        period: u8,
    },
}

/// Static operation template inside a basic block.
///
/// `pattern_idx` indexes the program-wide table of [`AddressPattern`]s for
/// memory operations and is `u32::MAX` otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticOp {
    /// Operation class (branches are *not* encoded here; they terminate blocks).
    pub op: crate::OpClass,
    /// Source registers.
    pub srcs: [Option<RegId>; 2],
    /// Destination register.
    pub dst: Option<RegId>,
    /// Index into [`StaticProgram::patterns`] for memory ops; `u32::MAX` otherwise.
    pub pattern_idx: u32,
}

/// Terminator of a basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Fall through to the next block without a branch instruction.
    FallThrough {
        /// Successor block.
        next: BlockId,
    },
    /// Direct unconditional branch to `target`.
    Jump {
        /// Successor block.
        target: BlockId,
    },
    /// Direct conditional branch: `taken -> target`, otherwise `fall`.
    CondBranch {
        /// Behaviour deciding taken/not-taken.
        behavior: BranchBehavior,
        /// Block reached when taken.
        target: BlockId,
        /// Block reached when not taken.
        fall: BlockId,
    },
    /// Indirect branch choosing uniformly (per execution) among `targets`.
    IndirectBranch {
        /// Candidate successor blocks.
        targets: Vec<BlockId>,
    },
}

/// A basic block: straight-line static ops plus a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Base PC of the block.
    pub base_pc: u64,
    /// Straight-line operations (no branches).
    pub ops: Vec<StaticOp>,
    /// Control-flow terminator.
    pub terminator: Terminator,
    /// Phase group this block belongs to (see `WorkloadSpec::phases`).
    pub phase: u8,
}

impl BasicBlock {
    /// Number of dynamic instructions one execution of this block emits
    /// (ops plus one branch instruction unless it falls through).
    pub fn dyn_len(&self) -> usize {
        self.ops.len() + usize::from(!matches!(self.terminator, Terminator::FallThrough { .. }))
    }
}

/// A synthetic static program: blocks, entry points per phase, and the table of
/// memory-address patterns referenced by the blocks' static ops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticProgram {
    /// All basic blocks. `BlockId` indexes this vector.
    pub blocks: Vec<BasicBlock>,
    /// Entry block per phase group.
    pub phase_entries: Vec<BlockId>,
    /// Program-wide memory pattern table.
    pub patterns: Vec<AddressPattern>,
    /// 4-byte instruction encoding assumed; total code footprint in bytes.
    pub code_bytes: u64,
}

impl StaticProgram {
    /// Number of static instructions (ops + block branches).
    pub fn static_len(&self) -> usize {
        self.blocks.iter().map(|b| b.dyn_len()).sum()
    }

    /// Entry block of phase `p` (wrapping over defined phases).
    pub fn entry(&self, p: u8) -> BlockId {
        self.phase_entries[p as usize % self.phase_entries.len().max(1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpClass;

    fn tiny_block() -> BasicBlock {
        BasicBlock {
            base_pc: 0x1000,
            ops: vec![StaticOp {
                op: OpClass::IntAlu,
                srcs: [Some(1), None],
                dst: Some(2),
                pattern_idx: u32::MAX,
            }],
            terminator: Terminator::CondBranch {
                behavior: BranchBehavior::Loop { trip: 4 },
                target: 0,
                fall: 1,
            },
            phase: 0,
        }
    }

    #[test]
    fn dyn_len_counts_branch() {
        let b = tiny_block();
        assert_eq!(b.dyn_len(), 2);
        let f = BasicBlock {
            terminator: Terminator::FallThrough { next: 1 },
            ..tiny_block()
        };
        assert_eq!(f.dyn_len(), 1);
    }

    #[test]
    fn entry_wraps_phases() {
        let p = StaticProgram {
            blocks: vec![tiny_block()],
            phase_entries: vec![0],
            patterns: vec![],
            code_bytes: 8,
        };
        assert_eq!(p.entry(0), 0);
        assert_eq!(p.entry(5), 0);
        assert_eq!(p.static_len(), 2);
    }
}
