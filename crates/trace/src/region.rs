//! Dynamic trace regions and region sampling.

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::generator::SEGMENT_LEN;
use crate::instruction::{Instruction, OpClass};
use crate::workload::WorkloadSpec;

/// A materialized dynamic trace region: the unit Concorde analyzes and the
/// cycle-level simulator executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynTrace {
    /// Short id of the generating workload (e.g. `"S1"`).
    pub workload_id: String,
    /// Trace index within the workload.
    pub trace_idx: u32,
    /// First-instruction offset within the virtual trace.
    pub start: u64,
    /// The dynamic instructions.
    pub instrs: Vec<Instruction>,
}

impl DynTrace {
    /// Number of instructions in the region.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` when the region holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Count of instructions matching `pred`.
    pub fn count_matching(&self, pred: impl Fn(&Instruction) -> bool) -> usize {
        self.instrs.iter().filter(|i| pred(i)).count()
    }

    /// Fraction of instructions of the given class.
    pub fn fraction(&self, op: OpClass) -> f64 {
        if self.instrs.is_empty() {
            return 0.0;
        }
        self.count_matching(|i| i.op == op) as f64 / self.instrs.len() as f64
    }
}

/// A lightweight reference to a (not yet materialized) region of a workload
/// trace. Region starts are segment-aligned so overlapping samples share
/// identical instructions (see Figure 4's overlap study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionRef {
    /// Index of the workload in the suite ordering.
    pub workload: u16,
    /// Trace index within the workload.
    pub trace_idx: u32,
    /// First instruction offset (segment aligned).
    pub start: u64,
    /// Region length in instructions.
    pub len: u32,
}

impl RegionRef {
    /// Instruction-interval overlap with another region of the same trace.
    pub fn overlap(&self, other: &RegionRef) -> u64 {
        if self.workload != other.workload || self.trace_idx != other.trace_idx {
            return 0;
        }
        let a0 = self.start;
        let a1 = self.start + u64::from(self.len);
        let b0 = other.start;
        let b1 = other.start + u64::from(other.len);
        a1.min(b1).saturating_sub(a0.max(b0))
    }
}

/// Samples a region of `len` instructions uniformly from `spec`'s traces,
/// aligned to generator segments (paper §4: regions are sampled randomly from a
/// randomly chosen trace, with probability proportional to trace length — all
/// our traces of one workload share a length, so uniform trace choice matches).
pub fn sample_region(
    spec: &WorkloadSpec,
    workload_idx: u16,
    len: u32,
    rng: &mut ChaCha12Rng,
) -> RegionRef {
    let trace_idx = rng.gen_range(0..spec.n_traces.max(1));
    let max_start_seg = spec.trace_len.saturating_sub(u64::from(len)) / SEGMENT_LEN;
    let start = rng.gen_range(0..=max_start_seg) * SEGMENT_LEN;
    RegionRef {
        workload: workload_idx,
        trace_idx,
        start,
        len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::by_id;
    use rand::SeedableRng;

    #[test]
    fn overlap_math() {
        let a = RegionRef {
            workload: 0,
            trace_idx: 0,
            start: 0,
            len: 100,
        };
        let b = RegionRef {
            workload: 0,
            trace_idx: 0,
            start: 50,
            len: 100,
        };
        let c = RegionRef {
            workload: 0,
            trace_idx: 1,
            start: 50,
            len: 100,
        };
        let d = RegionRef {
            workload: 0,
            trace_idx: 0,
            start: 200,
            len: 100,
        };
        assert_eq!(a.overlap(&b), 50);
        assert_eq!(b.overlap(&a), 50);
        assert_eq!(a.overlap(&c), 0, "different traces never overlap");
        assert_eq!(a.overlap(&d), 0, "disjoint intervals");
        assert_eq!(a.overlap(&a), 100);
    }

    #[test]
    fn sampling_is_aligned_and_in_range() {
        let spec = by_id("P2").unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..100 {
            let r = sample_region(&spec, 1, 24_000, &mut rng);
            assert_eq!(r.start % SEGMENT_LEN, 0);
            assert!(r.trace_idx < spec.n_traces);
            assert!(r.start + u64::from(r.len) <= spec.trace_len + SEGMENT_LEN);
        }
    }

    #[test]
    fn dyn_trace_helpers() {
        let spec = by_id("O1").unwrap();
        let t = crate::generate_region(&spec, 0, 0, 2000);
        assert_eq!(t.len(), 2000);
        assert!(!t.is_empty());
        let f = t.fraction(OpClass::IntAlu);
        assert!(f > 0.2, "dhrystone is ALU heavy, got {f}");
    }
}
