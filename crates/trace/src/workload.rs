//! The 29-program workload suite (paper Table 2 substitute).
//!
//! Each program from the paper's corpus is modelled as a [`WorkloadSpec`]: a
//! statistical description (instruction mix, memory profile, branch profile,
//! code shape, phase schedule) from which [`crate::generate_region`] produces
//! deterministic dynamic traces. The characteristics are matched qualitatively
//! to the paper's program descriptions — e.g. `S1` (505.mcf_r) is a
//! pointer-chasing, cache-sensitive workload, `S4` (541.leela_r) is
//! frontend/branch bound, `O3` (MMU) is a synthetic memory test with extreme
//! CPI — so the suite spans the same behavioural space even though the
//! original proprietary traces are unavailable.

use serde::{Deserialize, Serialize};

/// Workload group from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Google-internal production workloads (P1–P13).
    Proprietary,
    /// Cloud benchmarks (C1–C2).
    Cloud,
    /// Open benchmarks (O1–O4).
    Open,
    /// SPEC CPU2017 rate benchmarks (S1–S10).
    Spec2017,
    /// Real programs ingested at runtime (e.g. executed RISC-V ELF
    /// binaries); never part of the static 29-program catalog.
    Real,
}

/// Instruction-mix weights (need not sum to 1; normalized at use).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Integer ALU weight.
    pub alu: f32,
    /// Integer multiply weight.
    pub mul: f32,
    /// Integer divide weight.
    pub div: f32,
    /// FP add weight.
    pub fp_alu: f32,
    /// FP multiply weight.
    pub fp_mul: f32,
    /// FP divide weight.
    pub fp_div: f32,
    /// Load weight.
    pub load: f32,
    /// Store weight.
    pub store: f32,
    /// Nop/move weight.
    pub nop: f32,
}

impl OpMix {
    /// Integer-dominated mix.
    pub fn int_heavy() -> Self {
        OpMix {
            alu: 0.52,
            mul: 0.03,
            div: 0.004,
            fp_alu: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.24,
            store: 0.12,
            nop: 0.05,
        }
    }

    /// Floating-point / media mix.
    pub fn fp_heavy() -> Self {
        OpMix {
            alu: 0.22,
            mul: 0.02,
            div: 0.0,
            fp_alu: 0.2,
            fp_mul: 0.22,
            fp_div: 0.01,
            load: 0.2,
            store: 0.1,
            nop: 0.02,
        }
    }

    /// Memory-dominated mix.
    pub fn mem_heavy() -> Self {
        OpMix {
            alu: 0.3,
            mul: 0.01,
            div: 0.0,
            fp_alu: 0.02,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.4,
            store: 0.15,
            nop: 0.02,
        }
    }

    /// Store-leaning mix (logging / disk style).
    pub fn store_heavy() -> Self {
        OpMix {
            alu: 0.32,
            mul: 0.01,
            div: 0.0,
            fp_alu: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.22,
            store: 0.33,
            nop: 0.03,
        }
    }
}

/// Relative weights over the memory-access pattern families and the working set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemProfile {
    /// Data working-set size in bytes.
    pub wss_bytes: u64,
    /// Weight of streaming (sequential) accesses.
    pub seq_w: f32,
    /// Weight of strided accesses.
    pub strided_w: f32,
    /// Weight of uniform-random accesses.
    pub random_w: f32,
    /// Weight of pointer-chasing accesses.
    pub chase_w: f32,
    /// Weight of hot stack-like accesses (L1-resident).
    pub stack_w: f32,
    /// Byte stride used by strided patterns.
    pub stride_bytes: u64,
}

impl MemProfile {
    /// Streaming profile over `wss` bytes.
    pub fn streaming(wss: u64) -> Self {
        MemProfile {
            wss_bytes: wss,
            seq_w: 0.6,
            strided_w: 0.15,
            random_w: 0.05,
            chase_w: 0.0,
            stack_w: 0.2,
            stride_bytes: 256,
        }
    }

    /// Pointer-chasing profile over `wss` bytes.
    pub fn chasing(wss: u64) -> Self {
        MemProfile {
            wss_bytes: wss,
            seq_w: 0.05,
            strided_w: 0.05,
            random_w: 0.2,
            chase_w: 0.5,
            stack_w: 0.2,
            stride_bytes: 128,
        }
    }

    /// Random-access profile (hash tables, caches) over `wss` bytes.
    pub fn random(wss: u64) -> Self {
        MemProfile {
            wss_bytes: wss,
            seq_w: 0.1,
            strided_w: 0.1,
            random_w: 0.55,
            chase_w: 0.05,
            stack_w: 0.2,
            stride_bytes: 192,
        }
    }

    /// Cache-resident profile: tiny working set, mostly stack hits.
    pub fn resident(wss: u64) -> Self {
        MemProfile {
            wss_bytes: wss,
            seq_w: 0.2,
            strided_w: 0.1,
            random_w: 0.1,
            chase_w: 0.0,
            stack_w: 0.6,
            stride_bytes: 64,
        }
    }
}

/// Branch behaviour profile of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchProfile {
    /// Fraction of block terminators that are conditional branches.
    pub cond_frac: f32,
    /// Fraction that are direct unconditional jumps.
    pub uncond_frac: f32,
    /// Fraction that are indirect branches (rest fall through).
    pub indirect_frac: f32,
    /// Weight of strongly biased conditional branches.
    pub biased_w: f32,
    /// Weight of loop back-edges.
    pub loop_w: f32,
    /// Weight of periodic (history-predictable) branches.
    pub periodic_w: f32,
    /// Weight of genuinely random mid-bias branches (hard for any predictor).
    pub random_w: f32,
    /// Mean loop trip count.
    pub avg_trip: u16,
    /// Number of dynamic targets per indirect branch.
    pub indirect_targets: u8,
}

impl BranchProfile {
    /// Highly predictable branches (loops + strong bias).
    pub fn predictable() -> Self {
        BranchProfile {
            cond_frac: 0.55,
            uncond_frac: 0.12,
            indirect_frac: 0.02,
            biased_w: 0.5,
            loop_w: 0.35,
            periodic_w: 0.12,
            random_w: 0.03,
            avg_trip: 24,
            indirect_targets: 2,
        }
    }

    /// Hard-to-predict branches (tree search / data-dependent).
    pub fn unpredictable() -> Self {
        BranchProfile {
            cond_frac: 0.62,
            uncond_frac: 0.08,
            indirect_frac: 0.04,
            biased_w: 0.25,
            loop_w: 0.12,
            periodic_w: 0.13,
            random_w: 0.5,
            avg_trip: 8,
            indirect_targets: 6,
        }
    }

    /// Typical mixed behaviour.
    pub fn mixed() -> Self {
        BranchProfile {
            cond_frac: 0.55,
            uncond_frac: 0.12,
            indirect_frac: 0.05,
            biased_w: 0.42,
            loop_w: 0.25,
            periodic_w: 0.18,
            random_w: 0.15,
            avg_trip: 12,
            indirect_targets: 4,
        }
    }
}

/// Static code shape (footprint drives the frontend/I-cache behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeShape {
    /// Number of basic blocks in the static program.
    pub n_blocks: u32,
    /// Mean straight-line ops per block.
    pub avg_block_len: u32,
    /// Base address of the text segment.
    pub code_base: u64,
}

impl CodeShape {
    /// Tiny kernel (fits trivially in L1i).
    pub fn kernel() -> Self {
        CodeShape {
            n_blocks: 48,
            avg_block_len: 7,
            code_base: 0x40_0000,
        }
    }

    /// Medium application code.
    pub fn medium() -> Self {
        CodeShape {
            n_blocks: 600,
            avg_block_len: 6,
            code_base: 0x40_0000,
        }
    }

    /// Large, frontend-stressing footprint (search / database binaries).
    pub fn large() -> Self {
        CodeShape {
            n_blocks: 4000,
            avg_block_len: 5,
            code_base: 0x40_0000,
        }
    }
}

/// One execution phase: mix + memory profile active for a span of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Instruction mix during this phase.
    pub mix: OpMix,
    /// Memory profile during this phase.
    pub mem: MemProfile,
}

/// Full statistical description of one Table-2 program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Short identifier used in the paper's figures (e.g. `"S1"`).
    pub id: String,
    /// Human-readable name (e.g. `"505.mcf_r"`).
    pub name: String,
    /// Workload group.
    pub class: WorkloadClass,
    /// Base seed; combined with trace/segment indices for determinism.
    pub seed: u64,
    /// Number of distinct traces of this program (Table 2 "Traces", scaled).
    pub n_traces: u32,
    /// Virtual length of each trace in instructions (Table 2 scaled down).
    pub trace_len: u64,
    /// Phase schedule (cycled through the trace).
    pub phases: Vec<PhaseSpec>,
    /// Instructions per phase before switching (in segments of the generator).
    pub phase_len: u64,
    /// Fraction of instructions forced into a serial dependency chain
    /// (controls ILP; 0 = maximally parallel register reuse).
    pub chain_frac: f32,
    /// ISB instructions per 1000 instructions.
    pub isb_per_kinstr: f32,
    /// Branch behaviour.
    pub branch: BranchProfile,
    /// Static code shape.
    pub code: CodeShape,
}

impl WorkloadSpec {
    /// Convenience constructor for single-phase workloads.
    #[allow(clippy::too_many_arguments)]
    pub fn single_phase(
        id: &str,
        name: &str,
        class: WorkloadClass,
        seed: u64,
        n_traces: u32,
        trace_len: u64,
        mix: OpMix,
        mem: MemProfile,
        branch: BranchProfile,
        code: CodeShape,
    ) -> Self {
        WorkloadSpec {
            id: id.to_string(),
            name: name.to_string(),
            class,
            seed,
            n_traces,
            trace_len,
            phases: vec![PhaseSpec { mix, mem }],
            phase_len: 1 << 16,
            chain_frac: 0.1,
            isb_per_kinstr: 0.0,
            branch,
            code,
        }
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Builds the full 29-program suite mirroring paper Table 2.
///
/// Entries are ordered P1–P13, C1–C2, O1–O4, S1–S10. Trace counts and lengths
/// are scaled down from the paper (see `DESIGN.md` §3) but preserve relative
/// magnitudes.
///
/// # Examples
///
/// ```
/// let suite = concorde_trace::suite();
/// assert_eq!(suite.len(), 29);
/// assert!(suite.iter().any(|w| w.id == "S1"));
/// ```
pub fn suite() -> Vec<WorkloadSpec> {
    let mut v = Vec::with_capacity(29);
    let s = WorkloadSpec::single_phase;

    // ---- Proprietary (P1..P13) ----
    v.push(s(
        "P1",
        "Compression",
        WorkloadClass::Proprietary,
        101,
        4,
        2 << 20,
        OpMix::int_heavy(),
        MemProfile::streaming(8 * MB),
        BranchProfile::mixed(),
        CodeShape::medium(),
    ));
    v.push(s(
        "P2",
        "Search1",
        WorkloadClass::Proprietary,
        102,
        12,
        4 << 20,
        OpMix::int_heavy(),
        MemProfile::random(24 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    v.push(s(
        "P3",
        "Search4",
        WorkloadClass::Proprietary,
        103,
        12,
        4 << 20,
        OpMix::int_heavy(),
        MemProfile::random(16 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    v.push(s(
        "P4",
        "Disk",
        WorkloadClass::Proprietary,
        104,
        12,
        4 << 20,
        OpMix::store_heavy(),
        MemProfile::streaming(32 * MB),
        BranchProfile::predictable(),
        CodeShape::medium(),
    ));
    v.push(s(
        "P5",
        "Video",
        WorkloadClass::Proprietary,
        105,
        16,
        4 << 20,
        OpMix::fp_heavy(),
        MemProfile::streaming(12 * MB),
        BranchProfile::predictable(),
        CodeShape::medium(),
    ));
    v.push(s(
        "P6",
        "NoSQL Database1",
        WorkloadClass::Proprietary,
        106,
        12,
        4 << 20,
        OpMix::mem_heavy(),
        MemProfile::chasing(24 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    v.push(s(
        "P7",
        "Search2",
        WorkloadClass::Proprietary,
        107,
        8,
        6 << 20,
        OpMix::int_heavy(),
        MemProfile::random(20 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    v.push(s(
        "P8",
        "MapReduce1",
        WorkloadClass::Proprietary,
        108,
        8,
        6 << 20,
        OpMix::int_heavy(),
        MemProfile::streaming(16 * MB),
        BranchProfile::mixed(),
        CodeShape::medium(),
    ));
    // P9 (Search3) carries an explicit two-phase schedule: a compute phase and a
    // cache-hostile phase. Figure 17 zooms into exactly this phase behaviour.
    let mut p9 = s(
        "P9",
        "Search3",
        WorkloadClass::Proprietary,
        109,
        24,
        6 << 20,
        OpMix::int_heavy(),
        MemProfile::random(8 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    );
    p9.phases = vec![
        PhaseSpec {
            mix: OpMix::int_heavy(),
            mem: MemProfile::resident(96 * KB),
        },
        PhaseSpec {
            mix: OpMix::mem_heavy(),
            mem: MemProfile::chasing(24 * MB),
        },
        PhaseSpec {
            mix: OpMix::int_heavy(),
            mem: MemProfile::random(4 * MB),
        },
    ];
    p9.phase_len = 1 << 15;
    v.push(p9);
    v.push(s(
        "P10",
        "Logs",
        WorkloadClass::Proprietary,
        110,
        12,
        8 << 20,
        OpMix::store_heavy(),
        MemProfile::streaming(24 * MB),
        BranchProfile::mixed(),
        CodeShape::medium(),
    ));
    v.push(s(
        "P11",
        "NoSQL Database2",
        WorkloadClass::Proprietary,
        111,
        8,
        8 << 20,
        OpMix::mem_heavy(),
        MemProfile::chasing(48 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    let mut p12 = s(
        "P12",
        "MapReduce2",
        WorkloadClass::Proprietary,
        112,
        8,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::random(32 * MB),
        BranchProfile::unpredictable(),
        CodeShape::medium(),
    );
    p12.chain_frac = 0.2;
    v.push(p12);
    v.push(s(
        "P13",
        "Query Engine&Database",
        WorkloadClass::Proprietary,
        113,
        32,
        8 << 20,
        OpMix::mem_heavy(),
        MemProfile::random(40 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));

    // ---- Cloud (C1..C2) ----
    v.push(s(
        "C1",
        "Memcached",
        WorkloadClass::Cloud,
        201,
        4,
        2 << 20,
        OpMix::mem_heavy(),
        MemProfile::random(32 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    let mut c2 = s(
        "C2",
        "MySQL",
        WorkloadClass::Cloud,
        202,
        8,
        4 << 20,
        OpMix::int_heavy(),
        MemProfile::chasing(16 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    );
    c2.isb_per_kinstr = 0.05;
    v.push(c2);

    // ---- Open (O1..O4) ----
    v.push(s(
        "O1",
        "Dhrystone",
        WorkloadClass::Open,
        301,
        1,
        1 << 20,
        OpMix::int_heavy(),
        MemProfile::resident(32 * KB),
        BranchProfile::predictable(),
        CodeShape::kernel(),
    ));
    v.push(s(
        "O2",
        "CoreMark",
        WorkloadClass::Open,
        302,
        1,
        1 << 20,
        OpMix::int_heavy(),
        MemProfile::resident(64 * KB),
        BranchProfile::predictable(),
        CodeShape::kernel(),
    ));
    // O3 is a synthetic MMU/memory test: essentially pure dependent misses, by far
    // the highest CPI of the suite (called out in §5.2.5 as an OOD outlier).
    let mut o3 = s(
        "O3",
        "MMU",
        WorkloadClass::Open,
        303,
        8,
        2 << 20,
        OpMix::mem_heavy(),
        MemProfile::chasing(96 * MB),
        BranchProfile::predictable(),
        CodeShape::kernel(),
    );
    o3.chain_frac = 0.6;
    v.push(o3);
    // O4 stresses execution units with serial chains and divides.
    let mut o4 = s(
        "O4",
        "CPUtest",
        WorkloadClass::Open,
        304,
        8,
        4 << 20,
        OpMix {
            alu: 0.4,
            mul: 0.12,
            div: 0.06,
            fp_alu: 0.08,
            fp_mul: 0.06,
            fp_div: 0.03,
            load: 0.12,
            store: 0.06,
            nop: 0.02,
        },
        MemProfile::resident(48 * KB),
        BranchProfile::predictable(),
        CodeShape::kernel(),
    );
    o4.chain_frac = 0.5;
    o4.isb_per_kinstr = 0.2;
    v.push(o4);

    // ---- SPEC2017 (S1..S10) ----
    v.push(s(
        "S1",
        "505.mcf_r",
        WorkloadClass::Spec2017,
        401,
        4,
        8 << 20,
        OpMix::mem_heavy(),
        MemProfile::chasing(64 * MB),
        BranchProfile::mixed(),
        CodeShape::kernel(),
    ));
    v.push(s(
        "S2",
        "520.omnetpp_r",
        WorkloadClass::Spec2017,
        402,
        4,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::chasing(24 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    v.push(s(
        "S3",
        "523.xalancbmk_r",
        WorkloadClass::Spec2017,
        403,
        4,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::random(12 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    v.push(s(
        "S4",
        "541.leela_r",
        WorkloadClass::Spec2017,
        404,
        4,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::resident(128 * KB),
        BranchProfile::unpredictable(),
        CodeShape::medium(),
    ));
    v.push(s(
        "S5",
        "548.exchange2_r",
        WorkloadClass::Spec2017,
        405,
        4,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::resident(256 * KB),
        BranchProfile::predictable(),
        CodeShape::medium(),
    ));
    v.push(s(
        "S6",
        "531.deepsjeng_r",
        WorkloadClass::Spec2017,
        406,
        4,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::random(2 * MB),
        BranchProfile::unpredictable(),
        CodeShape::medium(),
    ));
    let mut s7 = s(
        "S7",
        "557.xz_r",
        WorkloadClass::Spec2017,
        407,
        6,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::random(16 * MB),
        BranchProfile::mixed(),
        CodeShape::medium(),
    );
    s7.chain_frac = 0.3;
    v.push(s7);
    v.push(s(
        "S8",
        "500.perlbench_r",
        WorkloadClass::Spec2017,
        408,
        6,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::random(4 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));
    v.push(s(
        "S9",
        "525.x264_r",
        WorkloadClass::Spec2017,
        409,
        6,
        8 << 20,
        OpMix::fp_heavy(),
        MemProfile::streaming(8 * MB),
        BranchProfile::predictable(),
        CodeShape::medium(),
    ));
    v.push(s(
        "S10",
        "502.gcc_r",
        WorkloadClass::Spec2017,
        410,
        10,
        8 << 20,
        OpMix::int_heavy(),
        MemProfile::random(24 * MB),
        BranchProfile::mixed(),
        CodeShape::large(),
    ));

    v
}

/// The suite catalog, built once and cached for the lifetime of the
/// process. The serving hot path validates every request's workload against
/// the catalog, so lookups must not rebuild 29 specs' worth of `String`s
/// per request — borrow from here instead.
pub fn suite_cached() -> &'static [WorkloadSpec] {
    static SUITE: std::sync::OnceLock<Vec<WorkloadSpec>> = std::sync::OnceLock::new();
    SUITE.get_or_init(suite)
}

/// Looks up a suite workload by its short id (e.g. `"S1"`), borrowing from
/// the cached catalog — the allocation-free lookup the serving warm path
/// uses.
pub fn by_id_ref(id: &str) -> Option<&'static WorkloadSpec> {
    suite_cached().iter().find(|w| w.id == id)
}

/// Looks up a suite workload by its short id (e.g. `"S1"`), cloning the
/// spec. Prefer [`by_id_ref`] anywhere allocation or lookup cost matters.
pub fn by_id(id: &str) -> Option<WorkloadSpec> {
    by_id_ref(id).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_29_unique_programs() {
        let s = suite();
        assert_eq!(s.len(), 29);
        let ids: HashSet<_> = s.iter().map(|w| w.id.clone()).collect();
        assert_eq!(ids.len(), 29);
        let seeds: HashSet<_> = s.iter().map(|w| w.seed).collect();
        assert_eq!(
            seeds.len(),
            29,
            "seeds must be unique for trace independence"
        );
    }

    #[test]
    fn suite_covers_all_classes() {
        let s = suite();
        for class in [
            WorkloadClass::Proprietary,
            WorkloadClass::Cloud,
            WorkloadClass::Open,
            WorkloadClass::Spec2017,
        ] {
            assert!(s.iter().any(|w| w.class == class));
        }
        assert_eq!(
            s.iter()
                .filter(|w| w.class == WorkloadClass::Proprietary)
                .count(),
            13
        );
        assert_eq!(
            s.iter()
                .filter(|w| w.class == WorkloadClass::Spec2017)
                .count(),
            10
        );
    }

    #[test]
    fn specs_are_well_formed() {
        for w in suite() {
            assert!(!w.phases.is_empty(), "{}: no phases", w.id);
            assert!(w.n_traces >= 1 && w.trace_len > 0);
            assert!(w.code.n_blocks >= 2 && w.code.avg_block_len >= 1);
            assert!((0.0..=1.0).contains(&w.chain_frac));
            let b = w.branch;
            assert!(b.cond_frac + b.uncond_frac + b.indirect_frac <= 1.0 + 1e-5);
            for p in &w.phases {
                let m = p.mix;
                let total = m.alu
                    + m.mul
                    + m.div
                    + m.fp_alu
                    + m.fp_mul
                    + m.fp_div
                    + m.load
                    + m.store
                    + m.nop;
                assert!(total > 0.0, "{}: empty mix", w.id);
                assert!(p.mem.wss_bytes >= 1024);
            }
        }
    }

    #[test]
    fn by_id_finds_and_misses() {
        assert_eq!(by_id("S1").unwrap().name, "505.mcf_r");
        assert!(by_id("ZZ").is_none());
    }

    #[test]
    fn p9_has_phase_behaviour() {
        let p9 = by_id("P9").unwrap();
        assert!(p9.phases.len() >= 2, "P9 drives the Figure 17 phase study");
    }
}
