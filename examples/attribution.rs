//! Performance attribution with Shapley values (paper §6, Figure 15).
//!
//! Shows why ordered parameter ablations mislead: shrinking caches *then* the
//! load queue blames the load queue, the opposite order blames the caches;
//! the Shapley value splits the interaction fairly. The performance model
//! here is the cycle-level simulator itself, so no training is needed —
//! exactly the setting where the paper notes Shapley analysis is usually
//! unaffordable, and why Concorde's fast model matters at scale.
//!
//! Run with: `cargo run --release --example attribution`

use concorde_suite::prelude::*;

fn main() {
    let spec = by_id("P9").expect("Search3");
    let n = 16_000usize;
    let full = generate_region(&spec, 0, concorde_suite::trace::SEGMENT_LEN * 12, 2 * n);
    let (warmup, region) = full.instrs.split_at(n);

    // Baseline "big core" vs a target with small caches AND a small LQ.
    let base = MicroArch::big_core();
    let mut target = base;
    target.mem.l1i_kb = 64;
    target.mem.l1d_kb = 64;
    target.mem.l2_kb = 1024;
    target.lq_size = 12;

    let sim = |arch: &MicroArch| simulate_warmed(warmup, region, arch, SimOptions::default()).cpi();
    let groups = cache_vs_lq_groups();

    let cache_first = ablation_deltas(sim, &base, &target, &groups, &[0, 1]);
    let lq_first = ablation_deltas(sim, &base, &target, &groups, &[1, 0]);
    let shapley = shapley_exact(sim, &base, &target, &groups);

    println!(
        "baseline CPI {:.3} → target CPI {:.3}\n",
        shapley.base_value, shapley.target_value
    );
    println!(
        "{:<14} {:>10} {:>12}",
        "attribution", "caches", "load queue"
    );
    for (name, a) in [
        ("cache → LQ", &cache_first),
        ("LQ → cache", &lq_first),
        ("Shapley", &shapley),
    ] {
        println!("{name:<14} {:>+10.3} {:>+12.3}", a.values[0], a.values[1]);
    }
    println!(
        "\nΣ Shapley = {:+.3} = ΔCPI (efficiency); ordered ablations disagree with each other",
        shapley.values.iter().sum::<f64>()
    );
}
