//! Design-space exploration: sweep ROB × load-queue sizes for one workload
//! with *one* feature precomputation — the use case Concorde's O(1) inference
//! makes interactive (paper §1: "rapid design-space exploration").
//!
//! The sweep is evaluated twice: with the cycle-level simulator (slow,
//! ground truth) and with Concorde's analytical min-bound (instant), so the
//! example runs without a trained model. Swap in a trained
//! `ConcordePredictor` for the learned variant.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use concorde_suite::prelude::*;
use std::time::Instant;

fn main() {
    let profile = ReproProfile::quick();
    let spec = by_id("P11").expect("NoSQL Database2");
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (warmup, region) = full.instrs.split_at(profile.warmup_len);

    let robs = [32u32, 128, 512];
    let lqs = [4u32, 16, 64];

    // One precompute covers the whole grid.
    let mut sweep = SweepConfig::for_arch(&MicroArch::arm_n1());
    sweep.rob = robs.to_vec();
    sweep.lq = lqs.to_vec();
    let t0 = Instant::now();
    let store = FeatureStore::precompute(warmup, region, &sweep, &profile);
    let t_pre = t0.elapsed();

    println!("{} on a ROB x LQ grid (base: ARM N1)\n", spec.name);
    println!(
        "{:>6} {:>6} | {:>12} {:>14} | {:>12}",
        "ROB", "LQ", "sim CPI", "sim time", "bound CPI"
    );
    let mut t_sim_total = std::time::Duration::ZERO;
    let mut t_bound_total = std::time::Duration::ZERO;
    for &rob in &robs {
        for &lq in &lqs {
            let arch = MicroArch {
                rob_size: rob,
                lq_size: lq,
                ..MicroArch::arm_n1()
            };
            let t1 = Instant::now();
            let sim = simulate_warmed(warmup, region, &arch, SimOptions::default());
            let t_sim = t1.elapsed();
            t_sim_total += t_sim;
            let t2 = Instant::now();
            let bound = store.min_bound_cpi(&arch);
            t_bound_total += t2.elapsed();
            println!(
                "{rob:>6} {lq:>6} | {:>12.3} {t_sim:>14.2?} | {bound:>12.3}",
                sim.cpi()
            );
        }
    }
    println!(
        "\nprecompute (once): {t_pre:.2?}; analytical evaluation of all {} designs: {t_bound_total:.2?} \
         vs {t_sim_total:.2?} of simulation",
        robs.len() * lqs.len()
    );
    println!("bigger ROB/LQ should never hurt: check the CPI columns decrease down each group.");
}
