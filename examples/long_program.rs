//! Long-program CPI estimation by region sampling (paper §5.1, Figure 9).
//!
//! Simulating a long program cycle by cycle costs O(L); Concorde estimates
//! its CPI from a handful of O(1) region predictions. This example uses the
//! analytical min-bound as the per-region estimator (so it runs without
//! training) and compares sampling levels against a full simulation of the
//! program.
//!
//! Run with: `cargo run --release --example long_program`

use concorde_suite::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::time::Instant;

fn main() {
    let profile = ReproProfile::quick();
    let spec = by_id("S7").expect("557.xz_r");
    let arch = MicroArch::arm_n1();
    let program_len = 400_000usize;

    // Ground truth: simulate the whole program.
    let t0 = Instant::now();
    let full = generate_region(&spec, 0, 0, program_len);
    let truth = simulate(&full.instrs, &arch, SimOptions::default());
    let t_sim = t0.elapsed();
    println!(
        "full simulation of {program_len} instructions: CPI {:.3} in {t_sim:.2?}",
        truth.cpi()
    );

    // Region-sampled estimates.
    let mut rng = ChaCha12Rng::seed_from_u64(9);
    for n_samples in [4usize, 16, 48] {
        let t1 = Instant::now();
        let mut acc = 0.0;
        for _ in 0..n_samples {
            let max_start = (program_len - profile.region_len) as u64;
            let start = rng.gen_range(0..=max_start) / concorde_suite::trace::SEGMENT_LEN
                * concorde_suite::trace::SEGMENT_LEN;
            let warm_start = start.saturating_sub(profile.warmup_len as u64);
            let warm_len = (start - warm_start) as usize;
            let r = generate_region(&spec, 0, warm_start, warm_len + profile.region_len);
            let (w, body) = r.instrs.split_at(warm_len);
            let store = FeatureStore::precompute(w, body, &SweepConfig::for_arch(&arch), &profile);
            acc += store.min_bound_cpi(&arch);
        }
        let est = acc / n_samples as f64;
        println!(
            "{n_samples:>3} sampled regions: estimated CPI {est:.3} ({:+.1}% vs truth) in {:.2?}",
            (est - truth.cpi()) / truth.cpi() * 100.0,
            t1.elapsed()
        );
    }
    println!("\n(the trained Concorde model replaces the min-bound estimator in the full pipeline — see `--bin fig09_long_programs`)");
}
