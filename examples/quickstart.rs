//! Quickstart: the full Concorde flow on one program region.
//!
//! 1. Generate a synthetic trace region (DynamoRIO substitute).
//! 2. Run the reference cycle-level simulator for ground truth.
//! 3. Precompute Concorde's performance distributions for one design.
//! 4. Train a small Concorde model and predict the region's CPI.
//!
//! Run with: `cargo run --release --example quickstart`

use concorde_suite::prelude::*;

fn main() {
    // 1. A 505.mcf_r-like pointer-chasing region with cache warmup.
    let profile = ReproProfile::quick();
    let spec = by_id("S1").expect("S1 is in the suite");
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (warmup, region) = full.instrs.split_at(profile.warmup_len);
    println!(
        "region: {} instructions of {} ({} loads)",
        region.len(),
        spec.name,
        region.iter().filter(|i| i.op.is_load()).count()
    );

    // 2. Ground truth from the cycle-level simulator on ARM N1.
    let arch = MicroArch::arm_n1();
    let sim = simulate_warmed(warmup, region, &arch, SimOptions::default());
    println!(
        "cycle-level simulator: CPI = {:.3} ({} cycles)",
        sim.cpi(),
        sim.cycles
    );

    // 3. Concorde's analytical stage: per-resource performance distributions.
    let store = FeatureStore::precompute(warmup, region, &SweepConfig::for_arch(&arch), &profile);
    println!(
        "analytical min-bound estimate: CPI = {:.3}",
        store.min_bound_cpi(&arch)
    );

    // 4. Train a small Concorde model on a few labelled samples and predict.
    println!("training a small demonstration model (~1 minute)…");
    let data = generate_dataset(&DatasetConfig::random(profile.clone(), 256, 7));
    let model = train_model(&data, &profile, &TrainOptions::default());
    let predicted = model.predict(&store, &arch);
    println!(
        "Concorde prediction: CPI = {predicted:.3} (relative error vs simulator: {:.1}%)",
        (predicted - sim.cpi()).abs() / sim.cpi() * 100.0
    );
    println!("note: the bundled experiment pipeline trains on thousands of samples; see `cargo run -p concorde-bench --release --bin run_all`.");
}
