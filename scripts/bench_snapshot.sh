#!/usr/bin/env bash
# Snapshot the serving benchmarks into a committed JSON reference.
#
# Runs the serve benches under BENCH_JSON=1 (the vendored criterion shim's
# machine-readable JSONL mode) and writes BENCH_serve.json at the repo
# root: per-benchmark mean/p50/p99 (ns) plus derived elems_per_s, alongside
# the frozen pre-sharded-queue (PR 7) numbers for before/after comparison.
# CI's throughput smoke reads the committed file and fails if
# serve_throughput/service_batch_128 regresses by more than 20%.
#
# Usage: scripts/bench_snapshot.sh [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_serve.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

BENCH_JSON=1 cargo bench -p concorde-bench --bench serve_throughput 2>/dev/null \
    | grep '^{' >"$TMP"
BENCH_JSON=1 cargo bench -p concorde-bench --bench serve_shed 2>/dev/null \
    | grep '^{' >>"$TMP" || true

python3 - "$TMP" "$OUT" <<'PY'
import json
import sys

jsonl, out = sys.argv[1], sys.argv[2]
results = {}
with open(jsonl) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        results[row.pop("id")] = row

# The serving hot path before the sharded-queue/slot-slab rewrite (one
# global Mutex<VecDeque> + Condvar, per-request mpsc channels, double-parse
# wire decode). Frozen so the before/after delta stays visible in-repo.
baseline_pr7 = {
    "serve_throughput/sequential_direct_x128": {"mean_ns": 4185014.6, "p50_ns": 4774310.0, "p99_ns": 5982049.7, "samples": 12, "elements": 128, "elems_per_s": 30585.3},
    "serve_throughput/service_batch_1": {"mean_ns": 387909.3, "p50_ns": 367683.6, "p99_ns": 547150.9, "samples": 12, "elements": 1, "elems_per_s": 2577.9},
    "serve_throughput/service_batch_16": {"mean_ns": 258329.0, "p50_ns": 255077.2, "p99_ns": 335780.3, "samples": 12, "elements": 16, "elems_per_s": 61936.5},
    "serve_throughput/service_batch_128": {"mean_ns": 2037391.1, "p50_ns": 2016717.2, "p99_ns": 2621355.0, "samples": 12, "elements": 128, "elems_per_s": 62825.4},
    "serve_throughput/service_batch_128_int8": {"mean_ns": 3462367.3, "p50_ns": 3472378.0, "p99_ns": 3658990.5, "samples": 12, "elements": 128, "elems_per_s": 36968.9},
    "serve_cold_warm/warm16_p50_under_cold_churn/async_pool": {"mean_ns": 1018374.6, "p50_ns": 918605.3, "p99_ns": 1883573.7, "samples": 12, "elements": 16, "elems_per_s": 15711.3},
    "serve_cold_warm/warm16_p50_under_cold_churn/inline_miss": {"mean_ns": 8583829.1, "p50_ns": 8597739.0, "p99_ns": 8936625.0, "samples": 12, "elements": 16, "elems_per_s": 1864.0},
}

doc = {
    "_generated_by": "scripts/bench_snapshot.sh (BENCH_JSON=1 serve benches)",
    "_note": "numbers are host-dependent; regenerate on the comparison host",
    "baseline_pr7": baseline_pr7,
    "results": results,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} ({len(results)} benchmarks)")
PY
