//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides the same authoring API (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `iter`/`iter_batched`) with
//! a simple warmup + timed-samples measurement loop that prints mean/median
//! per-iteration times. Statistical machinery (outlier analysis, HTML
//! reports) is intentionally out of scope; the numbers it prints are honest
//! wall-clock measurements suitable for comparing implementations in-repo.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` treats the setup product (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration nanoseconds of the final sample run.
    pub(crate) result_ns: f64,
    pub(crate) median_ns: f64,
    pub(crate) p99_ns: f64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs ~10ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters_per_sample =
            ((Duration::from_millis(10).as_nanos() / once.as_nanos()).max(1) as u64).min(1_000_000);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            sample_ns.push(ns);
        }
        self.finish_samples(sample_ns);
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        let per_sample = 8u32;
        for _ in 0..self.samples {
            let mut total = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            sample_ns.push(total.as_nanos() as f64 / f64::from(per_sample));
        }
        self.finish_samples(sample_ns);
    }

    fn finish_samples(&mut self, mut sample_ns: Vec<f64>) {
        sample_ns.sort_by(f64::total_cmp);
        self.median_ns = sample_ns[sample_ns.len() / 2];
        // Nearest-rank p99 (for the shim's small sample counts this is the
        // slowest or second-slowest sample — still a useful tail signal).
        let p99_idx =
            ((sample_ns.len() as f64 * 0.99).ceil() as usize).clamp(1, sample_ns.len()) - 1;
        self.p99_ns = sample_ns[p99_idx];
        self.result_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
    }
}

/// Whether `BENCH_JSON` asks for machine-readable output (any non-empty
/// value other than `0`). Checked per benchmark so tests can toggle it.
fn json_output() -> bool {
    std::env::var("BENCH_JSON").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Minimal JSON string escaping for benchmark ids.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API parity; the shim keys everything off sample counts.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
            median_ns: 0.0,
            p99_ns: 0.0,
        };
        f(&mut b);
        if json_output() {
            // One JSON object per line (JSONL): stable keys, ns timings,
            // throughput derived from the mean like the text path.
            let mut line = format!(
                "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"p50_ns\":{:.1},\"p99_ns\":{:.1},\"samples\":{}",
                json_escape(id),
                b.result_ns,
                b.median_ns,
                b.p99_ns,
                self.sample_size
            );
            match throughput {
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!(
                        ",\"elements\":{n},\"elems_per_s\":{:.1}",
                        n as f64 / (b.result_ns / 1e9)
                    ));
                }
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!(
                        ",\"bytes\":{n},\"bytes_per_s\":{:.1}",
                        n as f64 / (b.result_ns / 1e9)
                    ));
                }
                None => {}
            }
            line.push('}');
            println!("{line}");
            return;
        }
        let mut line = format!(
            "{id:<44} time: [mean {} median {} p99 {}]",
            fmt_ns(b.result_ns),
            fmt_ns(b.median_ns),
            fmt_ns(b.p99_ns)
        );
        if let Some(Throughput::Elements(n)) = throughput {
            let per_sec = n as f64 / (b.result_ns / 1e9);
            line.push_str(&format!("  thrpt: {per_sec:.0} elem/s"));
        }
        if let Some(Throughput::Bytes(n)) = throughput {
            let per_sec = n as f64 / (b.result_ns / 1e9);
            line.push_str(&format!(
                "  thrpt: {:.1} MiB/s",
                per_sec / (1024.0 * 1024.0)
            ));
        }
        println!("{line}");
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let t = self.throughput;
        self.parent.run_one(&full, t, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let t = self.throughput;
        self.parent.run_one(&full, t, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
