//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses: [`Mutex`] with a non-poisoning
//! `lock()` returning the guard directly, `into_inner`, and [`RwLock`] with
//! `read`/`write`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Locks, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Shared lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
