//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The `proptest!` macro expands each property into a plain `#[test]` that
//! draws `ProptestConfig::cases` deterministic samples per strategy (seeded
//! SplitMix64 — case `i` of a given test is reproducible across runs) and
//! executes the body. No shrinking: a failing case panics with the assertion
//! message, and determinism makes it directly re-runnable.

use std::ops::Range;

/// Deterministic sample source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case index.
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Length specifications `vec` accepts (a range or an exact size).
    pub trait IntoSizeRange {
        /// Converts into a half-open length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    /// `vec(element_strategy, len_range_or_exact)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to draw per property.
    pub cases: u32,
    /// Accepted for API parity; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts inside a property (panics on failure in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests; each becomes a deterministic multi-case `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(__cfg.cases) {
                    let mut __rng = $crate::TestRng::deterministic(
                        __case ^ (stringify!($name).len() as u64) << 32,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(x in 3u32..10, f in -1.0f64..1.0, v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn mapping_works(y in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 200);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::deterministic(4);
        let mut b = crate::TestRng::deterministic(4);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
