//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The container this reproduction builds in has no crates.io access, so the
//! workspace vendors minimal, API-compatible implementations of its external
//! dependencies under `shims/`. This crate mirrors `rand` 0.8's surface as
//! exercised by the Concorde code: [`RngCore`], the [`Rng`] extension trait
//! (`gen`, `gen_bool`, `gen_range`), [`SeedableRng`] with `seed_from_u64`,
//! and [`seq::SliceRandom::shuffle`]. Streams are deterministic given a seed,
//! which is all the reproduction requires; no claim of statistical quality
//! beyond that is made.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic RNGs, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (as `rand` does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Slice shuffling and selection, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom` used by the workspace.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

/// `rand::rngs` placeholder for API parity.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f32 = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = Counter(3);
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
    }
}
