//! Offline stand-in for `rand_chacha`: a real ChaCha12 keystream RNG.
//!
//! Implements the ChaCha block function (12 rounds) over a 256-bit seed and a
//! 64-bit block counter. Deterministic, `Clone`, and cheap to fork — the
//! properties the Concorde reproduction relies on. The word stream is not
//! guaranteed to be bit-identical to the upstream `rand_chacha` crate (the
//! workspace only requires internal determinism).

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 12;

/// ChaCha12-based deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (o, i) in s.iter_mut().zip(init) {
            *o = o.wrapping_add(i);
        }
        self.buf = s;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, c) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        ChaCha12Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(1);
        let mut c = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn roughly_uniform() {
        let mut r = ChaCha12Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
