//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Real `serde` drives (de)serialization through visitor traits so formats
//! can stream. This shim collapses that machinery into one self-describing
//! tree, [`Content`]: `Serialize` renders a value into a `Content`,
//! `Deserialize` rebuilds a value from one, and format crates (the
//! `serde_json` shim) convert `Content` to and from bytes. The `derive`
//! macros (from the sibling `serde_derive` shim) generate impls against this
//! simplified model. Semantics intentionally mirror serde's JSON conventions:
//! structs become maps, unit enum variants become strings, and data-carrying
//! variants become single-entry maps — with one deviation: maps with
//! non-string keys serialize as sequences of `[key, value]` pairs instead of
//! erroring.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized tree (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys, insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map accessor used by generated code.
    pub fn as_map(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence accessor.
    pub fn as_seq(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in an entry list (linear scan; struct arity is small).
pub fn map_get<'a>(m: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// (De)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Content`] tree.
pub trait Serialize {
    /// The whole serialization contract of this shim.
    fn to_content(&self) -> Content;
}

/// Rebuilds `Self` from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// The whole deserialization contract of this shim.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

/// Mirrors `serde::de` for the `DeserializeOwned` bound.
pub mod de {
    /// Owned deserialization marker; blanket-implemented.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Mirrors `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v).map_err(|_| Error::custom("int overflow"))?,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = f64::from(*self);
                if v.is_finite() { Content::F64(v) } else { Content::Null }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let v: Vec<T> = Deserialize::from_content(c)?;
        <[T; N]>::try_from(v).map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let s = c.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$( stringify!($n) ),+].len();
                if s.len() != expected {
                    return Err(Error::custom("wrong tuple arity"));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// Maps serialize as a sequence of [key, value] pairs unless the key is a
// string (JSON objects can only have string keys; the workspace keys feature
// stores by integer tuples).
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c
            .as_seq()
            .ok_or_else(|| Error::custom("expected map pair sequence"))?;
        let mut out = HashMap::with_capacity_and_hasher(s.len(), S::default());
        for pair in s {
            let p = pair
                .as_seq()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            if p.len() != 2 {
                return Err(Error::custom("expected [key, value] pair"));
            }
            out.insert(K::from_content(&p[0])?, V::from_content(&p[1])?);
        }
        Ok(out)
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f32::from_content(&1.5f32.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn composites_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let c = v.to_content();
        assert_eq!(Vec::<(u32, f64)>::from_content(&c).unwrap(), v);

        let mut m = HashMap::new();
        m.insert((1u32, 2u32), vec![1.0f32, 2.0]);
        let c = m.to_content();
        assert_eq!(
            HashMap::<(u32, u32), Vec<f32>>::from_content(&c).unwrap(),
            m
        );

        let arr = [vec![1u8], vec![2, 3], vec![]];
        let back: [Vec<u8>; 3] = Deserialize::from_content(&arr.to_content()).unwrap();
        assert_eq!(back, arr);
    }
}
