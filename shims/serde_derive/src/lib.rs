//! Offline `#[derive(Serialize, Deserialize)]` for the `serde` shim.
//!
//! The real `serde_derive` builds on `syn`/`quote`, which are unavailable in
//! this container, so this crate parses the derive input directly from the
//! compiler's `TokenStream`. It supports exactly the shapes the workspace
//! declares: non-generic structs with named fields, tuple structs, and enums
//! whose variants are unit, newtype/tuple, or struct-like. The only field
//! attribute honoured is `#[serde(default)]`; other `#[serde(...)]`
//! attributes are rejected so silent behaviour changes cannot slip in.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Input {
    /// Named-field struct.
    Struct { name: String, fields: Vec<Field> },
    /// Tuple struct with N fields.
    TupleStruct { name: String, arity: usize },
    /// Enum.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(t: &TokenTree, ch: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Consumes leading attributes at `i`, returning whether `#[serde(default)]`
/// was among them. Panics (compile error) on unsupported serde attributes.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        if *i < tokens.len() && is_punct(&tokens[*i], '!') {
            *i += 1;
        }
        let TokenTree::Group(g) = &tokens[*i] else {
            panic!("serde_derive shim: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if !inner.is_empty() && is_ident(&inner[0], "serde") {
            let Some(TokenTree::Group(args)) = inner.get(1) else {
                panic!("serde_derive shim: malformed #[serde] attribute");
            };
            for arg in args.stream() {
                match &arg {
                    t if is_ident(t, "default") => has_default = true,
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => panic!(
                        "serde_derive shim: unsupported #[serde({other})] attribute; only `default` is implemented"
                    ),
                }
            }
        }
        *i += 1;
    }
    has_default
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        if *i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses `name: Type, ...` fields inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive shim: expected field name, got {:?}",
                tokens[i]
            );
        };
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "serde_derive shim: expected `:` after field name"
        );
        i += 1;
        // Skip the type: consume until a comma at zero angle-bracket depth.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field {
            name: name.to_string(),
            default,
        });
    }
    fields
}

/// Counts tuple fields in a paren group (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') => depth -= 1,
            t if is_punct(t, ',') && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive shim: expected variant name, got {:?}",
                tokens[i]
            );
        };
        i += 1;
        let kind = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = count_tuple_fields(g.stream());
                    i += 1;
                    VariantKind::Tuple(arity)
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    i += 1;
                    VariantKind::Struct(fields)
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive shim: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    if kind == "enum" {
        let TokenTree::Group(g) = &tokens[i] else {
            panic!("serde_derive shim: expected enum body");
        };
        return Input::Enum {
            name,
            variants: parse_variants(g.stream()),
        };
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Struct {
            name,
            fields: parse_named_fields(g.stream()),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Input::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        _ => panic!("serde_derive shim: unit structs are not supported (type `{name}`)"),
    }
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "__m.push((\"{f}\".to_string(), serde::Serialize::to_content(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{
                    fn to_content(&self) -> serde::Content {{
                        let mut __m: Vec<(String, serde::Content)> = Vec::with_capacity({n});
                        {pushes}
                        serde::Content::Map(__m)
                    }}
                }}",
                n = fields.len()
            )
        }
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|k| format!("serde::Serialize::to_content(&self.{k})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{
                    fn to_content(&self) -> serde::Content {{
                        serde::Content::Seq(vec![{}])
                    }}
                }}",
                items.join(", ")
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => serde::Content::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__x0) => serde::Content::Map(vec![(\"{vn}\".to_string(), serde::Serialize::to_content(__x0))]),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__x{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({bl}) => serde::Content::Map(vec![(\"{vn}\".to_string(), serde::Content::Seq(vec![{il}]))]),\n",
                            bl = binds.join(", "),
                            il = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_content({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bl} }} => serde::Content::Map(vec![(\"{vn}\".to_string(), serde::Content::Map(vec![{il}]))]),\n",
                            bl = binds.join(", "),
                            il = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{
                    fn to_content(&self) -> serde::Content {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let missing = if f.default {
                    "Default::default()".to_string()
                } else {
                    format!(
                        "return Err(serde::Error::custom(\"{name}: missing field `{f}`\"))",
                        f = f.name
                    )
                };
                inits.push_str(&format!(
                    "{f}: match serde::map_get(__m, \"{f}\") {{
                        Some(__v) => serde::Deserialize::from_content(__v)?,
                        None => {missing},
                    }},\n",
                    f = f.name
                ));
            }
            format!(
                "impl serde::Deserialize for {name} {{
                    fn from_content(__c: &serde::Content) -> Result<Self, serde::Error> {{
                        let __m = __c.as_map().ok_or_else(|| serde::Error::custom(\"{name}: expected map\"))?;
                        Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|k| format!("serde::Deserialize::from_content(&__s[{k}])?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{
                    fn from_content(__c: &serde::Content) -> Result<Self, serde::Error> {{
                        let __s = __c.as_seq().ok_or_else(|| serde::Error::custom(\"{name}: expected sequence\"))?;
                        if __s.len() != {arity} {{
                            return Err(serde::Error::custom(\"{name}: wrong arity\"));
                        }}
                        Ok({name}({}))
                    }}
                }}",
                items.join(", ")
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_content(__v)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("serde::Deserialize::from_content(&__s[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{
                                let __s = __v.as_seq().ok_or_else(|| serde::Error::custom(\"{name}::{vn}: expected sequence\"))?;
                                if __s.len() != {n} {{
                                    return Err(serde::Error::custom(\"{name}::{vn}: wrong arity\"));
                                }}
                                Ok({name}::{vn}({il}))
                            }}\n",
                            il = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let missing = if f.default {
                                "Default::default()".to_string()
                            } else {
                                format!(
                                    "return Err(serde::Error::custom(\"{name}::{vn}: missing field `{f}`\"))",
                                    f = f.name
                                )
                            };
                            inits.push_str(&format!(
                                "{f}: match serde::map_get(__fm, \"{f}\") {{
                                    Some(__fv) => serde::Deserialize::from_content(__fv)?,
                                    None => {missing},
                                }},\n",
                                f = f.name
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{
                                let __fm = __v.as_map().ok_or_else(|| serde::Error::custom(\"{name}::{vn}: expected map\"))?;
                                Ok({name}::{vn} {{ {inits} }})
                            }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{
                    fn from_content(__c: &serde::Content) -> Result<Self, serde::Error> {{
                        match __c {{
                            serde::Content::Str(__s) => match __s.as_str() {{
                                {unit_arms}
                                __other => Err(serde::Error::custom(format!(\"{name}: unknown variant `{{__other}}`\"))),
                            }},
                            _ => {{
                                let __m = __c.as_map().ok_or_else(|| serde::Error::custom(\"{name}: expected string or map\"))?;
                                if __m.len() != 1 {{
                                    return Err(serde::Error::custom(\"{name}: expected single-entry variant map\"));
                                }}
                                let (__k, __v) = &__m[0];
                                match __k.as_str() {{
                                    {data_arms}
                                    __other => Err(serde::Error::custom(format!(\"{name}: unknown variant `{{__other}}`\"))),
                                }}
                            }}
                        }}
                    }}
                }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
