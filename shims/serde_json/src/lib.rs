//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`Value`]/[`Map`], the [`json!`] macro, [`to_value`], [`to_writer`],
//! [`from_reader`], [`to_string`], and [`from_str`].
//!
//! Values round-trip through the `serde` shim's `Content` tree. One encoding
//! deviation from upstream: maps with non-string keys (the feature stores key
//! by integer tuples) serialize as arrays of `[key, value]` pairs rather than
//! erroring — both directions of this shim agree on that convention.

use std::fmt;
use std::io::{Read, Write};

use serde::{Content, Serialize};

mod parse;
mod value;

pub use parse::from_str_value;
pub use value::{Map, Number, Value};

/// Error type shared by parsing and conversion.
pub type Error = serde::Error;

/// Serializes any `Serialize` value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this shim (the signature mirrors upstream).
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(Value::from_content(value.to_content()))
}

/// Deserializes a typed value out of a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`'s shape.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_content(&value.into_content())
}

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Never fails in this shim (the signature mirrors upstream).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content());
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), std::io::Error> {
    let s = to_string(value).expect("serialization is infallible in the shim");
    writer.write_all(s.as_bytes())
}

/// Parses a typed value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = parse::from_str_value(s)?;
    T::from_content(&v.into_content())
}

/// Parses a typed value from a reader.
///
/// # Errors
///
/// Returns an error on I/O failure, malformed JSON, or a shape mismatch.
pub fn from_reader<R: Read, T: serde::de::DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf).map_err(Error::custom)?;
    from_str(&buf)
}

pub(crate) fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => {
            out.push_str(&v.to_string());
        }
        Content::I64(v) => {
            out.push_str(&v.to_string());
        }
        Content::F64(v) => {
            if v.is_finite() {
                let s = format!("{v}");
                out.push_str(&s);
                // Keep floats distinguishable from integers on re-parse.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_content(&mut s, &self.clone().into_content());
        f.write_str(&s)
    }
}

/// Builds a [`Value`] from JSON-ish syntax with expression interpolation.
///
/// Token-tree muncher modelled on upstream `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => { $crate::json_internal!($($json)+) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // -------------------- array --------------------
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // -------------------- object --------------------
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // -------------------- primary --------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serialization")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let n = 3u32;
        let xs = vec![1.5f64, 2.5];
        let v = json!({
            "a": n,
            "b": [1, 2, n],
            "nested": { "c": xs, "flag": true, "nothing": null },
            "expr": n as f64 * 2.0,
        });
        assert_eq!(v["a"].as_f64(), Some(3.0));
        assert_eq!(v["b"].as_array().unwrap().len(), 3);
        assert_eq!(v["nested"]["c"].as_array().unwrap().len(), 2);
        assert_eq!(v["expr"].as_f64(), Some(6.0));
        assert!(v["nested"]["nothing"].is_null());
    }

    #[test]
    fn text_roundtrip() {
        let v = json!({ "s": "a \"quoted\"\nline", "i": -3, "u": 7, "f": 0.25, "arr": [[1], []] });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(to_string(&back).unwrap(), s);
    }

    #[test]
    fn typed_roundtrip_via_text() {
        let pairs: Vec<(u32, f32)> = vec![(1, 0.5), (2, 1.25)];
        let s = to_string(&pairs).unwrap();
        let back: Vec<(u32, f32)> = from_str(&s).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn float_integer_values_stay_floats() {
        let s = to_string(&vec![2.0f64]).unwrap();
        assert_eq!(s, "[2.0]");
    }
}
