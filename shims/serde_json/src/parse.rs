//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::value::{Map, Number, Value};
use crate::Error;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a positioned error on malformed input.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::F64(v)))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Ok(Value::Number(Number::I64(v))),
                Err(_) => {
                    let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Number(Number::F64(v)))
                }
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Value::Number(Number::U64(v))),
                Err(_) => {
                    let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
                    Ok(Value::Number(Number::F64(v)))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v =
            from_str_value(r#" {"a": [1, -2, 3.5, "x\n", true, null], "b": {"c": 1e3}} "#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["a"][3].as_str(), Some("x\n"));
        assert_eq!(v["a"][4].as_bool(), Some(true));
        assert!(v["a"][5].is_null());
        assert_eq!(v["b"]["c"].as_f64(), Some(1000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str_value("{").is_err());
        assert!(from_str_value("[1,]").is_err());
        assert!(from_str_value("nul").is_err());
        assert!(from_str_value("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str_value(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }
}
