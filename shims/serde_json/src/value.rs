//! [`Value`], [`Number`], and [`Map`] mirroring `serde_json`'s tree API.

use serde::{Content, Deserialize, Serialize};

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Exact `u64` value, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    /// Exact `i64` value, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }
}

/// Insertion-ordered string-keyed object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts (replacing any existing entry with the same key); returns the
    /// previous value like the upstream API.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Converts from the serde shim's content tree.
    pub fn from_content(c: Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::U64(v) => Value::Number(Number::U64(v)),
            Content::I64(v) => Value::Number(Number::I64(v)),
            Content::F64(v) => Value::Number(Number::F64(v)),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    /// Converts into the serde shim's content tree.
    pub fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Number(Number::U64(v)) => Content::U64(v),
            Value::Number(Number::I64(v)) => Content::I64(v),
            Value::Number(Number::F64(v)) => Content::F64(v),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(map) => Content::Map(
                map.into_iter()
                    .map(|(k, v)| (k, v.into_content()))
                    .collect(),
            ),
        }
    }

    /// `f64` view of numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// `u64` view of numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `i64` view of numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.clone().into_content()
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        Ok(Value::from_content(c.clone()))
    }
}

macro_rules! impl_from_num {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::$variant(v as $conv)) }
        }
    )*};
}
impl_from_num!(u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
               usize => U64 as u64, f32 => F64 as f64, f64 => F64 as f64);

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        if v >= 0 {
            Value::Number(Number::U64(v as u64))
        } else {
            Value::Number(Number::I64(v))
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
