//! `concorde` — command-line interface to the reproduction.
//!
//! ```text
//! concorde simulate  <workload> [--arch n1|big] [--len N]   cycle-level CPI
//! concorde bound     <workload> [--arch n1|big] [--len N]   analytical min-bound CPI
//! concorde sweep     <workload> <param> v1,v2,…             CPI across one parameter
//! concorde attribute <workload>                             Shapley: big core → N1
//! concorde workloads                                        list the 29-program suite
//! ```
//!
//! All commands are deterministic and need no trained model (they use the
//! cycle-level simulator and the analytical stage; the learned predictor is
//! exercised by the `concorde-bench` binaries).

use concorde_suite::prelude::*;

fn parse_arch(args: &[String]) -> MicroArch {
    match args.iter().position(|a| a == "--arch").map(|i| args[i + 1].as_str()) {
        Some("big") => MicroArch::big_core(),
        _ => MicroArch::arm_n1(),
    }
}

fn parse_len(args: &[String], default: usize) -> usize {
    args.iter()
        .position(|a| a == "--len")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn region_of(id: &str, len: usize) -> (Vec<Instruction>, Vec<Instruction>) {
    let spec = by_id(id).unwrap_or_else(|| {
        eprintln!("unknown workload '{id}'; run `concorde workloads` for the list");
        std::process::exit(2);
    });
    let warm = len.min(32_000);
    let full = generate_region(&spec, 0, 0, warm + len);
    let (w, r) = full.instrs.split_at(warm);
    (w.to_vec(), r.to_vec())
}

fn apply_param(arch: &mut MicroArch, param: &str, v: u32) -> bool {
    match param {
        "rob" => arch.rob_size = v,
        "lq" => arch.lq_size = v,
        "sq" => arch.sq_size = v,
        "alu" => arch.alu_width = v,
        "fp" => arch.fp_width = v,
        "ls" => arch.ls_width = v,
        "fetch" => arch.fetch_width = v,
        "decode" => arch.decode_width = v,
        "rename" => arch.rename_width = v,
        "commit" => arch.commit_width = v,
        "l1d" => arch.mem.l1d_kb = v,
        "l1i" => arch.mem.l1i_kb = v,
        "l2" => arch.mem.l2_kb = v,
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "workloads" => {
            println!("{:<5} {:<28} {:<12} traces  instr(M)", "id", "name", "class");
            for w in suite() {
                println!(
                    "{:<5} {:<28} {:<12} {:>6}  {:>8.1}",
                    w.id,
                    w.name,
                    format!("{:?}", w.class),
                    w.n_traces,
                    w.n_traces as f64 * w.trace_len as f64 / 1e6
                );
            }
        }
        "simulate" => {
            let id = args.get(1).expect("usage: concorde simulate <workload>");
            let arch = parse_arch(&args);
            let len = parse_len(&args, 24_000);
            let (w, r) = region_of(id, len);
            let t0 = std::time::Instant::now();
            let res = simulate_warmed(&w, &r, &arch, SimOptions::default());
            println!(
                "{id}: CPI {:.3} over {len} instructions ({} cycles, {:?}); \
                 branches {} / mispredicted {}, RAM accesses {}",
                res.cpi(),
                res.cycles,
                t0.elapsed(),
                res.branch.branches,
                res.branch.mispredictions,
                res.d_ram
            );
        }
        "bound" => {
            let id = args.get(1).expect("usage: concorde bound <workload>");
            let arch = parse_arch(&args);
            let len = parse_len(&args, 24_000);
            let (w, r) = region_of(id, len);
            let profile = ReproProfile::default_repro();
            let t0 = std::time::Instant::now();
            let store = FeatureStore::precompute(&w, &r, &SweepConfig::for_arch(&arch), &profile);
            println!(
                "{id}: analytical min-bound CPI {:.3} (precompute {:?}); simulator says {:.3}",
                store.min_bound_cpi(&arch),
                t0.elapsed(),
                simulate_warmed(&w, &r, &arch, SimOptions::default()).cpi()
            );
        }
        "sweep" => {
            let id = args.get(1).expect("usage: concorde sweep <workload> <param> v1,v2,..");
            let param = args.get(2).expect("missing parameter (rob|lq|sq|alu|fp|ls|fetch|decode|rename|commit|l1d|l1i|l2)");
            let values: Vec<u32> = args
                .get(3)
                .expect("missing value list")
                .split(',')
                .map(|v| v.parse().expect("values must be integers"))
                .collect();
            let len = parse_len(&args, 24_000);
            let (w, r) = region_of(id, len);
            println!("{id}: sweeping {param} (base: ARM N1)");
            for v in values {
                let mut arch = parse_arch(&args);
                if !apply_param(&mut arch, param, v) {
                    eprintln!("unknown parameter '{param}'");
                    std::process::exit(2);
                }
                let res = simulate_warmed(&w, &r, &arch, SimOptions::default());
                println!("  {param} = {v:>5}: CPI {:.3}", res.cpi());
            }
        }
        "attribute" => {
            let id = args.get(1).expect("usage: concorde attribute <workload>");
            let len = parse_len(&args, 16_000);
            let (w, r) = region_of(id, len);
            let base = MicroArch::big_core();
            let target = MicroArch::arm_n1();
            // 6-group game on the simulator directly (exact Shapley).
            let groups: Vec<ParamGroup> = default_groups().into_iter().take(6).collect();
            println!("{id}: exact Shapley over {} groups (big core → ARM N1), 2^{} simulator runs…", groups.len(), groups.len());
            let f = |a: &MicroArch| simulate_warmed(&w, &r, a, SimOptions::default()).cpi();
            let s = shapley_exact(f, &base, &target, &groups);
            println!(
                "CPI {:.3} → {:.3} (groups outside the game stay at their big-core values)",
                s.base_value, s.target_value
            );
            for (label, v) in s.labels.iter().zip(&s.values) {
                println!("  {label:<20} {v:>+8.3}");
            }
            println!("  {:<20} {:>+8.3}  (= ΔCPI)", "Σ", s.values.iter().sum::<f64>());
        }
        _ => {
            println!(
                "concorde — CPU performance modeling reproduction\n\n\
                 usage:\n  concorde workloads\n  concorde simulate  <workload> [--arch n1|big] [--len N]\n  \
                 concorde bound     <workload> [--arch n1|big] [--len N]\n  \
                 concorde sweep     <workload> <param> v1,v2,… [--len N]\n  \
                 concorde attribute <workload> [--len N]"
            );
        }
    }
}
