//! `concorde` — command-line interface to the reproduction.
//!
//! ```text
//! concorde simulate  <workload> [--arch n1|big] [--len N]   cycle-level CPI
//! concorde bound     <workload> [--arch n1|big] [--len N]   analytical min-bound CPI
//! concorde sweep     <workload> <param> v1,v2,…             CPI across one parameter
//! concorde attribute <workload>                             Shapley: big core → N1
//! concorde workloads [--json]                               list the 29-program suite
//! concorde riscv run <elf> [--max-insts N]                  execute an RV32IM binary
//! concorde serve     [--addr A] [--model P] [options]       prediction service (TCP)
//! concorde predict   <workload> [--addr A] [options]        query CPI (local or remote)
//! ```
//!
//! `simulate`/`bound`/`sweep`/`attribute` are deterministic and need no
//! trained model. `serve` and `predict` exercise the learned predictor
//! through `concorde-serve`: `serve` loads (or quickly trains) a model and
//! speaks line-delimited JSON over TCP; `predict` either queries a running
//! server or spins the service up in-process.
//!
//! Every `<workload>` operand accepts either a suite id (`S5`) or a
//! real-program id `riscv:<path>[@<max-insts>]` naming an RV32IM ELF
//! binary, which is executed once and served from its recorded trace.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use concorde_suite::prelude::*;
use concorde_suite::serve::workload_catalog;

fn usage_text() -> &'static str {
    "concorde — CPU performance modeling reproduction\n\n\
         workload ids: a suite id (S5) or riscv:<path>[@<max-insts>] for an RV32IM ELF\n\n\
         usage:\n  concorde workloads [--json]\n  \
         concorde riscv run <elf> [--max-insts N]\n  \
         concorde simulate  <workload> [--arch n1|big] [--len N]\n  \
         concorde bound     <workload> [--arch n1|big] [--len N] [--fast]\n  \
         concorde sweep     <workload> <param> v1,v2,… [--arch n1|big] [--len N]\n  \
         concorde attribute <workload> [--len N]\n  \
         concorde precompute <workload> --out FILE [--trace N] [--start N] [--len N]\n             \
         [--profile quick|default] [--sweep arch|quantized] [--arch n1|big]\n             \
         [--encoding f32|f16|int8]\n  \
         concorde inspect   <FILE>\n  \
         concorde serve     [--addr HOST:PORT] [--model PATH] [--save-model PATH]\n             \
         [--profile quick|default] [--train-samples N] [--workers N]\n             \
         [--max-batch N] [--deadline-us N] [--cache-bytes N[k|m|g]] [--cache-shards N]\n             \
         [--precompute-workers N] [--inline-miss] [--max-conns N] [--miss-slo-ms N]\n             \
         [--slo CLASS=MS,…] [--metrics-addr HOST:PORT]\n             \
         [--sweep arch|quantized] [--encoding f32|f16|int8]\n             \
         [--model-encoding f32|int8] [--preload FILE]…\n             \
         [--read-timeout-ms N] [--max-line-bytes N[k|m|g]] [--dynamic-workloads DIR]\n  \
         concorde predict   <workload> [--addr HOST:PORT] [--arch n1|big] [--set param=value …]\n             \
         [--trace N] [--start N] [--count N] [--deadline-ms N]\n             \
         [--class interactive|batch] [--notify] [--schema-version N]"
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn bail(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    usage();
}

/// Value of `--flag <value>`, or a usage error naming the flag.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| bail(&format!("{flag} needs a value")))
            .as_str()
    })
}

/// Every value of a repeatable `--flag <value>`.
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .map(|(i, _)| {
            args.get(i + 1)
                .unwrap_or_else(|| bail(&format!("{flag} needs a value")))
                .as_str()
        })
        .collect()
}

fn parse_arch(args: &[String]) -> MicroArch {
    match flag_value(args, "--arch") {
        None | Some("n1") => MicroArch::arm_n1(),
        Some("big") => MicroArch::big_core(),
        Some(other) => bail(&format!("unknown --arch `{other}` (expected n1 or big)")),
    }
}

fn parse_len(args: &[String], default: usize) -> usize {
    match flag_value(args, "--len") {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| bail(&format!("--len `{v}` is not a number"))),
    }
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| bail(&format!("{flag} `{v}` is not a number"))),
    }
}

fn operand<'a>(args: &'a [String], idx: usize, what: &str) -> &'a str {
    args.get(idx)
        .unwrap_or_else(|| bail(&format!("missing {what}")))
        .as_str()
}

fn region_of(id: &str, len: usize) -> (Vec<Instruction>, Vec<Instruction>) {
    let resolved = resolve_workload(id).unwrap_or_else(|e| {
        eprintln!("{e}; run `concorde workloads` for the suite list");
        std::process::exit(2);
    });
    let warm = len.min(32_000);
    let full = resolved.materialize(0, 0, warm + len);
    // Dynamic traces are finite: a short program may not fill warm + len.
    let (w, r) = full.instrs.split_at(warm.min(full.instrs.len()));
    (w.to_vec(), r.to_vec())
}

fn apply_param(arch: &mut MicroArch, param: &str, v: u32) -> bool {
    match param {
        "rob" => arch.rob_size = v,
        "lq" => arch.lq_size = v,
        "sq" => arch.sq_size = v,
        "alu" => arch.alu_width = v,
        "fp" => arch.fp_width = v,
        "ls" => arch.ls_width = v,
        "fetch" => arch.fetch_width = v,
        "decode" => arch.decode_width = v,
        "rename" => arch.rename_width = v,
        "commit" => arch.commit_width = v,
        "l1d" => arch.mem.l1d_kb = v,
        "l1i" => arch.mem.l1i_kb = v,
        "l2" => arch.mem.l2_kb = v,
        _ => return false,
    }
    true
}

/// Loads `--model` if given, otherwise trains a small model on the fly.
fn obtain_model(args: &[String], profile: &ReproProfile) -> ConcordePredictor {
    if let Some(path) = flag_value(args, "--model") {
        return ConcordePredictor::load(std::path::Path::new(path))
            .unwrap_or_else(|e| bail(&format!("cannot load model from {path}: {e}")));
    }
    let n = parse_num(args, "--train-samples", 96usize);
    eprintln!("[serve] no --model given; training a {n}-sample model (pass --model for quality) …");
    let t0 = std::time::Instant::now();
    let data = generate_dataset(&DatasetConfig::random(profile.clone(), n, 1));
    let model = train_model(&data, profile, &TrainOptions::default());
    eprintln!(
        "[serve] model ready in {:?} ({} params)",
        t0.elapsed(),
        model.mlp.num_params()
    );
    if let Some(path) = flag_value(args, "--save-model") {
        match model.save(std::path::Path::new(path)) {
            Ok(()) => eprintln!("[serve] model saved to {path}"),
            Err(e) => eprintln!("[serve] warning: could not save model: {e}"),
        }
    }
    model
}

fn serve_profile(args: &[String]) -> ReproProfile {
    match flag_value(args, "--profile") {
        None | Some("quick") => ReproProfile::quick(),
        Some("default") => ReproProfile::default_repro(),
        Some(other) => bail(&format!(
            "unknown --profile `{other}` (expected quick or default)"
        )),
    }
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix (e.g. `512m`),
/// rejecting zero and overflow with the parser's typed error.
fn parse_bytes(flag: &str, v: &str) -> usize {
    parse_byte_size(v).unwrap_or_else(|e| bail(&format!("{flag}: {e}")))
}

/// Parses `--encoding f32|f16|int8` (default `f32`).
fn parse_encoding(args: &[String]) -> ArenaEncoding {
    match flag_value(args, "--encoding") {
        None => ArenaEncoding::F32,
        Some(v) => ArenaEncoding::parse(v).unwrap_or_else(|| {
            bail(&format!(
                "unknown --encoding `{v}` (expected f32, f16, or int8)"
            ))
        }),
    }
}

fn serve_config(args: &[String]) -> ServeConfig {
    if args.iter().any(|a| a == "--cache") {
        bail(
            "--cache <stores> was replaced: the cache now admits by a byte budget — \
             use --cache-bytes N[k|m|g] (and --cache-shards N); size it from \
             `concorde inspect` approx_bytes or `{\"cmd\": \"stats\"}`",
        );
    }
    let sweep = match flag_value(args, "--sweep") {
        None | Some("arch") => SweepScope::PerArch,
        Some("quantized") => SweepScope::Quantized,
        Some(other) => bail(&format!(
            "unknown --sweep `{other}` (expected arch or quantized)"
        )),
    };
    let defaults = ServeConfig::default();
    ServeConfig {
        workers: parse_num(args, "--workers", 0usize),
        queue_capacity: parse_num(args, "--queue", defaults.queue_capacity),
        max_batch: parse_num(args, "--max-batch", defaults.max_batch),
        batch_deadline: Duration::from_micros(parse_num(args, "--deadline-us", 1000u64)),
        cache_shards: parse_num(args, "--cache-shards", 0usize),
        cache_bytes: flag_value(args, "--cache-bytes")
            .map(|v| parse_bytes("--cache-bytes", v))
            .unwrap_or(defaults.cache_bytes),
        precompute_workers: parse_num(args, "--precompute-workers", 0usize),
        miss_policy: if args.iter().any(|a| a == "--inline-miss") {
            MissPolicy::Inline
        } else {
            MissPolicy::AsyncPool
        },
        max_connections: parse_num(args, "--max-conns", defaults.max_connections),
        sweep,
        store_encoding: parse_encoding(args),
        miss_slo: flag_value(args, "--miss-slo-ms").map(|v| {
            let ms: u64 = v
                .parse()
                .unwrap_or_else(|_| bail(&format!("--miss-slo-ms `{v}` is not a number")));
            if ms == 0 {
                bail("--miss-slo-ms must be > 0 (omit the flag to disable shedding)");
            }
            if args.iter().any(|a| a == "--inline-miss") {
                bail(
                    "--miss-slo-ms requires the async precompute pool; \
                     --inline-miss builds misses on the batch worker and never sheds",
                );
            }
            Duration::from_millis(ms)
        }),
        class_slo: flag_value(args, "--slo")
            .map(|v| {
                if args.iter().any(|a| a == "--inline-miss") {
                    bail(
                        "--slo requires the async precompute pool; \
                         --inline-miss builds misses on the batch worker and never sheds",
                    );
                }
                ClassSlo::parse(v).unwrap_or_else(|e| bail(&format!("--slo: {e}")))
            })
            .unwrap_or_default(),
        model_encoding: match flag_value(args, "--model-encoding") {
            None => defaults.model_encoding,
            Some(v) => ModelEncoding::parse(v).unwrap_or_else(|| {
                bail(&format!(
                    "unknown --model-encoding `{v}` (expected f32 or int8)"
                ))
            }),
        },
        read_timeout: flag_value(args, "--read-timeout-ms").map(|v| {
            let ms: u64 = v
                .parse()
                .unwrap_or_else(|_| bail(&format!("--read-timeout-ms `{v}` is not a number")));
            if ms == 0 {
                bail("--read-timeout-ms must be > 0 (omit the flag to keep idle connections)");
            }
            Duration::from_millis(ms)
        }),
        max_line_bytes: flag_value(args, "--max-line-bytes")
            .map(|v| parse_bytes("--max-line-bytes", v))
            .unwrap_or(defaults.max_line_bytes),
        fault_plan: None,
        // Opt-in: without it, client-supplied `riscv:` ids only serve when
        // already registered (e.g. via --preload); with it, unseen ids
        // resolve on demand from ELFs inside DIR.
        dynamic_root: flag_value(args, "--dynamic-workloads").map(|v| {
            let p = std::path::PathBuf::from(v);
            if !p.is_dir() {
                bail(&format!("--dynamic-workloads `{v}` is not a directory"));
            }
            p
        }),
    }
}

/// Flipped by the `SIGTERM` handler; the watcher thread in `serve` begins
/// the graceful drain when it sees the flag.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    // Async-signal-safe by construction: the handler is one atomic store.
    TERM.store(true, Ordering::SeqCst);
}

/// Installs the `SIGTERM` → drain flag handler. A raw `signal(2)` binding
/// keeps the tree dependency-free; `SIGINT` (Ctrl-C) keeps its default
/// hard-kill behavior so an operator can still bail out of a stuck drain.
#[cfg(unix)]
fn install_term_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

fn arch_spec_from_args(args: &[String]) -> ArchSpec {
    let mut spec = match flag_value(args, "--arch") {
        None => ArchSpec::default(),
        Some(base @ ("n1" | "big")) => ArchSpec::base(base),
        Some(other) => bail(&format!("unknown --arch `{other}` (expected n1 or big)")),
    };
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--set" {
            let kv = operand(args, i + 1, "--set value (param=value)");
            let (k, v) = kv
                .split_once('=')
                .unwrap_or_else(|| bail(&format!("--set `{kv}` is not param=value")));
            let v: u32 = v
                .parse()
                .unwrap_or_else(|_| bail(&format!("--set value `{v}` is not a number")));
            let ok = match k {
                "rob" => {
                    spec.rob = Some(v);
                    true
                }
                "lq" => {
                    spec.lq = Some(v);
                    true
                }
                "sq" => {
                    spec.sq = Some(v);
                    true
                }
                "alu" => {
                    spec.alu = Some(v);
                    true
                }
                "fp" => {
                    spec.fp = Some(v);
                    true
                }
                "ls" => {
                    spec.ls = Some(v);
                    true
                }
                "fetch" => {
                    spec.fetch = Some(v);
                    true
                }
                "decode" => {
                    spec.decode = Some(v);
                    true
                }
                "rename" => {
                    spec.rename = Some(v);
                    true
                }
                "commit" => {
                    spec.commit = Some(v);
                    true
                }
                "l1d" => {
                    spec.l1d = Some(v);
                    true
                }
                "l1i" => {
                    spec.l1i = Some(v);
                    true
                }
                "l2" => {
                    spec.l2 = Some(v);
                    true
                }
                "prefetch" => {
                    spec.prefetch = Some(v);
                    true
                }
                _ => false,
            };
            if !ok {
                bail(&format!("unknown --set parameter `{k}`"));
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    spec
}

fn print_response(resp: &PredictResponse) {
    match (&resp.cpi, &resp.error) {
        (Some(cpi), _) => println!(
            "id {:>4}: CPI {cpi:.4}  ({}, {} µs)",
            resp.id,
            if resp.is_upgrade() {
                "exact, upgraded"
            } else if resp.approx {
                "analytic min-bound, shed"
            } else if resp.cached {
                "cache hit"
            } else {
                "precomputed"
            },
            resp.micros
        ),
        (None, Some(e)) => println!("id {:>4}: error: {e}", resp.id),
        (None, None) => println!("id {:>4}: empty response", resp.id),
    }
}

fn main() {
    // Make `riscv:<path>` workload ids resolvable in every subcommand.
    concorde_riscv::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "riscv" => {
            match args.get(1).map(String::as_str) {
                Some("run") => {}
                Some(other) => bail(&format!(
                    "unknown riscv subcommand `{other}` (expected run)"
                )),
                None => bail("usage: concorde riscv run <elf> [--max-insts N]"),
            }
            let path = operand(&args, 2, "ELF path (usage: concorde riscv run <elf>)");
            let max_insts: u64 = parse_num(&args, "--max-insts", concorde_riscv::DEFAULT_MAX_INSTS);
            if max_insts == 0 {
                bail("--max-insts must be > 0");
            }
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| bail(&format!("cannot read ELF `{path}`: {e}")));
            let image = concorde_riscv::parse_elf32(&bytes)
                .unwrap_or_else(|e| bail(&format!("{path}: {e}")));
            let t0 = std::time::Instant::now();
            let exec = concorde_riscv::execute(&image, max_insts);
            let elapsed = t0.elapsed();
            let halt = match &exec.halt {
                concorde_riscv::HaltReason::Exited(code) => format!("exit({code})"),
                concorde_riscv::HaltReason::BudgetExhausted => {
                    format!("budget exhausted ({max_insts} instructions)")
                }
                concorde_riscv::HaltReason::Breakpoint => "ebreak".to_string(),
                concorde_riscv::HaltReason::DecodeError { pc, err } => {
                    format!("decode error at {pc:#010x}: {err}")
                }
            };
            let n = exec.trace.len();
            let count = |p: fn(&Instruction) -> bool| exec.trace.iter().filter(|i| p(i)).count();
            println!(
                "{path}: {n} instructions in {elapsed:?}, halt: {halt}; \
                 trace hash {:#018x}",
                exec.trace_hash()
            );
            println!(
                "  mix: {:.1}% loads, {:.1}% stores, {:.1}% branches \
                 ({} mem pages resident)",
                100.0 * count(|i| i.op.is_load()) as f64 / n.max(1) as f64,
                100.0 * count(|i| i.op.is_store()) as f64 / n.max(1) as f64,
                100.0 * count(|i| i.op.is_branch()) as f64 / n.max(1) as f64,
                exec.resident_pages
            );
            if !exec.stdout.is_empty() {
                println!("  stdout: {}", String::from_utf8_lossy(&exec.stdout));
            }
            // CPI on the reference simulator over the trace head: the same
            // number `concorde simulate riscv:<path>` reports.
            let arch = parse_arch(&args);
            let cap = 65_536.min(n);
            let res = simulate_warmed(&[], &exec.trace[..cap], &arch, SimOptions::default());
            println!(
                "  CPI {:.3} over first {cap} instructions (reference simulator); \
                 predict it with: concorde predict riscv:{path}",
                res.cpi()
            );
        }
        "workloads" => {
            if args.iter().any(|a| a == "--json") {
                println!("{}", workload_catalog());
                return;
            }
            println!(
                "{:<5} {:<28} {:<12} traces  instr(M)",
                "id", "name", "class"
            );
            for w in suite() {
                println!(
                    "{:<5} {:<28} {:<12} {:>6}  {:>8.1}",
                    w.id,
                    w.name,
                    format!("{:?}", w.class),
                    w.n_traces,
                    w.n_traces as f64 * w.trace_len as f64 / 1e6
                );
            }
        }
        "simulate" => {
            let id = operand(&args, 1, "workload (usage: concorde simulate <workload>)");
            let arch = parse_arch(&args);
            let len = parse_len(&args, 24_000);
            let (w, r) = region_of(id, len);
            let t0 = std::time::Instant::now();
            let res = simulate_warmed(&w, &r, &arch, SimOptions::default());
            println!(
                "{id}: CPI {:.3} over {len} instructions ({} cycles, {:?}); \
                 branches {} / mispredicted {}, RAM accesses {}",
                res.cpi(),
                res.cycles,
                t0.elapsed(),
                res.branch.branches,
                res.branch.mispredictions,
                res.d_ram
            );
        }
        "bound" => {
            let id = operand(&args, 1, "workload (usage: concorde bound <workload>)");
            let arch = parse_arch(&args);
            let len = parse_len(&args, 24_000);
            let (w, r) = region_of(id, len);
            let profile = ReproProfile::default_repro();
            let t0 = std::time::Instant::now();
            // `--fast` runs the analytic models at the queried architecture
            // only (the serving shed path); the store route sweeps the full
            // per-arch grid first. Both produce the identical bound.
            let (bound, how) = if args.iter().any(|a| a == "--fast") {
                (
                    analytic_min_bound_cpi(&w, &r, &arch, &profile),
                    "direct analytic",
                )
            } else {
                let store =
                    FeatureStore::precompute(&w, &r, &SweepConfig::for_arch(&arch), &profile);
                (store.min_bound_cpi(&arch), "precompute")
            };
            println!(
                "{id}: analytical min-bound CPI {bound:.3} ({how} {:?}); simulator says {:.3}",
                t0.elapsed(),
                simulate_warmed(&w, &r, &arch, SimOptions::default()).cpi()
            );
        }
        "sweep" => {
            let id = operand(
                &args,
                1,
                "workload (usage: concorde sweep <workload> <param> v1,v2,…)",
            );
            let param = operand(
                &args,
                2,
                "parameter (rob|lq|sq|alu|fp|ls|fetch|decode|rename|commit|l1d|l1i|l2)",
            );
            let values: Vec<u32> = operand(&args, 3, "value list (e.g. 32,64,128)")
                .split(',')
                .map(|v| {
                    v.parse()
                        .unwrap_or_else(|_| bail(&format!("sweep value `{v}` is not an integer")))
                })
                .collect();
            let len = parse_len(&args, 24_000);
            let (w, r) = region_of(id, len);
            println!("{id}: sweeping {param} (base: ARM N1)");
            for v in values {
                let mut arch = parse_arch(&args);
                if !apply_param(&mut arch, param, v) {
                    bail(&format!("unknown parameter `{param}`"));
                }
                let res = simulate_warmed(&w, &r, &arch, SimOptions::default());
                println!("  {param} = {v:>5}: CPI {:.3}", res.cpi());
            }
        }
        "attribute" => {
            let id = operand(&args, 1, "workload (usage: concorde attribute <workload>)");
            let len = parse_len(&args, 16_000);
            let (w, r) = region_of(id, len);
            let base = MicroArch::big_core();
            let target = MicroArch::arm_n1();
            // 6-group game on the simulator directly (exact Shapley).
            let groups: Vec<ParamGroup> = default_groups().into_iter().take(6).collect();
            println!(
                "{id}: exact Shapley over {} groups (big core → ARM N1), 2^{} simulator runs…",
                groups.len(),
                groups.len()
            );
            let f = |a: &MicroArch| simulate_warmed(&w, &r, a, SimOptions::default()).cpi();
            let s = shapley_exact(f, &base, &target, &groups);
            println!(
                "CPI {:.3} → {:.3} (groups outside the game stay at their big-core values)",
                s.base_value, s.target_value
            );
            for (label, v) in s.labels.iter().zip(&s.values) {
                println!("  {label:<20} {v:>+8.3}");
            }
            println!(
                "  {:<20} {:>+8.3}  (= ΔCPI)",
                "Σ",
                s.values.iter().sum::<f64>()
            );
        }
        "precompute" => {
            let id = operand(
                &args,
                1,
                "workload (usage: concorde precompute <workload> --out FILE)",
            );
            let out =
                flag_value(&args, "--out").unwrap_or_else(|| bail("precompute needs --out FILE"));
            let profile = serve_profile(&args);
            let trace: u32 = parse_num(&args, "--trace", 0u32);
            let start: u64 = parse_num(&args, "--start", 0u64);
            let len = parse_len(&args, profile.region_len) as u32;
            let arch = parse_arch(&args);
            let sweep = match flag_value(&args, "--sweep") {
                None | Some("arch") => SweepConfig::for_arch(&arch),
                Some("quantized") => SweepConfig::quantized(),
                Some(other) => bail(&format!(
                    "unknown --sweep `{other}` (expected arch or quantized)"
                )),
            };
            let resolved = resolve_workload(id).unwrap_or_else(|e| {
                bail(&format!("{e}; run `concorde workloads` for the suite list"))
            });
            let encoding = parse_encoding(&args);
            let warm_start = start.saturating_sub(profile.warmup_len as u64);
            let warm_len = (start - warm_start) as usize;
            let region = resolved.materialize(trace, warm_start, warm_len + len as usize);
            let (w, r) = region.instrs.split_at(warm_len.min(region.instrs.len()));
            let t0 = std::time::Instant::now();
            let mut store = FeatureStore::precompute(w, r, &sweep, &profile);
            if encoding != ArenaEncoding::F32 {
                store = store.reencoded(encoding);
            }
            let precompute_time = t0.elapsed();
            let key = FeatureKey {
                workload: id.into(),
                trace,
                start,
                region_len: len,
                sweep_hash: sweep_content_hash(&sweep),
            };
            let artifact = StoreArtifact::new(key, store);
            let path = std::path::Path::new(out);
            artifact
                .save(path)
                .unwrap_or_else(|e| bail(&format!("cannot write {out}: {e}")));
            let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let f32_equiv = artifact.store.encoded_bytes_f32() + artifact.store.raw_bytes_f64();
            let quantized = artifact.store.encoded_bytes() + artifact.store.raw_bytes();
            println!(
                "{id}: precomputed in {precompute_time:?} (schema v{SCHEMA_VERSION}, \
                 encoding {encoding}); {} encoded bytes, {} raw bytes \
                 ({:.2}x vs f32), artifact {out} ({file_bytes} bytes)",
                artifact.store.encoded_bytes(),
                artifact.store.raw_bytes(),
                f32_equiv as f64 / quantized.max(1) as f64,
            );
            println!(
                "serve it with: concorde serve --preload {out}{}",
                if flag_value(&args, "--sweep") == Some("quantized") {
                    " --sweep quantized"
                } else {
                    ""
                }
            );
        }
        "inspect" => {
            let path = operand(&args, 1, "artifact path (usage: concorde inspect <FILE>)");
            // Inspect maps rather than reads: O(page faults) even for a
            // fleet-sized artifact, and it proves the file is mmap-servable.
            let artifact = StoreArtifact::map(std::path::Path::new(path))
                .unwrap_or_else(|e| bail(&format!("cannot load {path}: {e}")));
            let store = &artifact.store;
            let schema = store.schema(FeatureVariant::Full);
            let f32_equiv = store.encoded_bytes_f32() + store.raw_bytes_f64();
            let quantized = store.encoded_bytes() + store.raw_bytes();
            let report = serde_json::json!({
                "artifact": {
                    "path": path,
                    "schema_version": artifact.schema_version,
                    "workload": artifact.key.workload,
                    "trace": artifact.key.trace,
                    "start": artifact.key.start,
                    "region_len": artifact.key.region_len,
                    "sweep_hash": format!("{:#018x}", artifact.key.sweep_hash),
                    "mmap": store.is_mapped(),
                },
                "store": {
                    "n_instr": store.n_instr(),
                    "n_windows": store.n_windows(),
                    "encoding_levels": store.encoding().levels,
                    "encoding_dim": store.encoding().dim(),
                    "arena_encoding": store.arena_encoding().name(),
                    "encoded_bytes": store.encoded_bytes(),
                    "raw_bytes": store.raw_bytes(),
                    "f32_equivalent_bytes": f32_equiv,
                    "compression_ratio": f32_equiv as f64 / quantized.max(1) as f64,
                    // Full resident footprint: what the serving cache's byte
                    // budget charges for this store — size `--cache-bytes`
                    // from this.
                    "approx_bytes": store.approx_bytes(),
                },
                "schema": schema,
            });
            println!(
                "{}",
                serde_json::to_string(&report).expect("serialize report")
            );
        }
        "serve" => {
            let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7878");
            let service_profile = serve_profile(&args);
            // Validate flags before the (potentially slow) model load/train.
            let cfg = serve_config(&args);
            let model = obtain_model(&args, &service_profile);
            let service = PredictionService::start(model, service_profile.clone(), cfg);
            let preloads = flag_values(&args, "--preload");
            for path in preloads {
                match service.preload_artifact(std::path::Path::new(path)) {
                    Ok(key) => {
                        eprintln!(
                            "[serve] preloaded {path}: {} trace {} @{} len {}",
                            key.workload, key.trace, key.start, key.region_len
                        );
                        if key.region_len as usize != service_profile.region_len {
                            eprintln!(
                                "[serve] warning: {path} covers a {}-instruction region but \
                                 default requests use {}; only requests passing `len: {}` \
                                 explicitly will hit it",
                                key.region_len, service_profile.region_len, key.region_len
                            );
                        }
                    }
                    Err(e) => bail(&format!("cannot preload {path}: {e}")),
                }
            }
            let cache = service.cache_stats();
            if cache.evictions > 0 {
                eprintln!(
                    "[serve] warning: preloaded artifacts exceed --cache-bytes {} \
                     ({} bytes resident, {} stores already evicted); the earliest \
                     preloads are cold again",
                    service.config().cache_bytes,
                    cache.bytes,
                    cache.evictions
                );
            }
            let listener = std::net::TcpListener::bind(addr)
                .unwrap_or_else(|e| bail(&format!("cannot bind {addr}: {e}")));
            // Held for the life of the accept loop below; dropping it would
            // stop the scrape endpoint.
            let _metrics_server = flag_value(&args, "--metrics-addr").map(|maddr| {
                let srv = service
                    .serve_metrics(maddr)
                    .unwrap_or_else(|e| bail(&format!("cannot bind metrics addr {maddr}: {e}")));
                eprintln!("[serve] metrics: http://{}/metrics", srv.addr());
                srv
            });
            eprintln!(
                "[serve] inference: {} kernel, {} weights",
                concorde_suite::ml::kernel_name(),
                service.config().model_encoding,
            );
            eprintln!(
                "[serve] listening on {addr} ({} workers, {} precompute threads); \
                 cache: {} shards, {} byte budget, {} stores; miss SLO: {}; \
                 protocol: one JSON request per line",
                service.workers(),
                service.precompute_workers(),
                service.config().effective_cache_shards(),
                service.config().cache_bytes,
                service.config().store_encoding,
                match service.config().miss_slo {
                    Some(d) => format!(
                        "{}ms (backlogged misses shed to the analytic bound)",
                        d.as_millis()
                    ),
                    None if !service.config().class_slo.is_empty() => {
                        let per_class: Vec<String> = RequestClass::ALL
                            .iter()
                            .filter_map(|c| {
                                service
                                    .config()
                                    .class_slo
                                    .get(*c)
                                    .map(|d| format!("{c}={}ms", d.as_millis()))
                            })
                            .collect();
                        format!("per-class ({})", per_class.join(", "))
                    }
                    None => "off (misses park until their store lands)".to_string(),
                },
            );
            eprintln!(
                "[serve] try: echo '{{\"workload\": \"S5\", \"arch\": {{\"base\": \"n1\"}}}}' | nc {addr}"
            );
            // SIGTERM → graceful drain: the handler only flips a flag; this
            // watcher does the real work from a normal thread.
            install_term_handler();
            let drain_client = service.client();
            std::thread::Builder::new()
                .name("concorde-term-watch".to_string())
                .spawn(move || loop {
                    if TERM.load(Ordering::SeqCst) {
                        eprintln!(
                            "[serve] SIGTERM: draining (stop accepting, answer in-flight, exit)"
                        );
                        drain_client.begin_drain();
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                })
                .expect("spawn signal watcher");
            if let Err(e) = service.serve_tcp(listener) {
                bail(&format!("server error: {e}"));
            }
            // serve_tcp returns only on drain. Dropping the service flushes
            // the queues and answers any straggling parked jobs before the
            // clean exit the drain contract promises.
            eprintln!("[serve] drained; shutting down");
            drop(service);
        }
        "predict" => {
            let id = operand(&args, 1, "workload (usage: concorde predict <workload>)");
            let spec = arch_spec_from_args(&args);
            let count: usize = parse_num(&args, "--count", 1usize);
            let trace: u32 = parse_num(&args, "--trace", 0u32);
            let start: u64 = parse_num(&args, "--start", 0u64);
            let deadline_ms: Option<u64> = flag_value(&args, "--deadline-ms").map(|v| {
                v.parse()
                    .unwrap_or_else(|_| bail(&format!("--deadline-ms `{v}` is not a number")))
            });
            let class = match flag_value(&args, "--class") {
                None => RequestClass::Interactive,
                Some(v) => RequestClass::parse(v).unwrap_or_else(|| {
                    bail(&format!("unknown --class `{v}` (interactive | batch)"))
                }),
            };
            let notify = args.iter().any(|a| a == "--notify");
            let schema_version: Option<u32> = flag_value(&args, "--schema-version").map(|v| {
                v.parse()
                    .unwrap_or_else(|_| bail(&format!("--schema-version `{v}` is not a number")))
            });
            let reqs: Vec<PredictRequest> = (0..count)
                .map(|i| PredictRequest {
                    id: i as u64,
                    workload: id.into(),
                    trace,
                    start,
                    len: 0,
                    arch: spec.clone(),
                    deadline_ms,
                    class,
                    notify,
                    schema_version,
                })
                .collect();
            if let Some(addr) = flag_value(&args, "--addr") {
                // Retry with jittered exponential backoff: a server mid-
                // restart answers the 2nd–5th attempt instead of failing
                // the whole command on one ECONNREFUSED.
                let mut client = TcpClient::connect_with_retry(
                    addr,
                    5,
                    Duration::from_millis(50),
                    Duration::from_secs(1),
                )
                .unwrap_or_else(|e| bail(&format!("cannot connect to {addr}: {e}")));
                let resps = client
                    .predict_many(&reqs)
                    .unwrap_or_else(|e| bail(&format!("request failed: {e}")));
                for r in &resps {
                    print_response(r);
                }
                // Each shed answer to a --notify request owes one pushed
                // upgrade line; collect them before disconnecting.
                let owed = if notify {
                    resps.iter().filter(|r| r.approx).count()
                } else {
                    0
                };
                for _ in 0..owed {
                    match client.wait_upgrade() {
                        Ok(up) => print_response(&up),
                        Err(e) => bail(&format!("waiting for upgrade: {e}")),
                    }
                }
            } else {
                eprintln!("[predict] no --addr; starting an in-process service");
                // The operator named the workload on the command line, so
                // resolve it now (registering e.g. a `riscv:` provider):
                // admission refuses *unseen* dynamic ids, and a bad ELF
                // path should fail here, before the model loads.
                if let Err(e) = resolve_workload(id) {
                    bail(&e);
                }
                let profile = serve_profile(&args);
                let cfg = serve_config(&args);
                let model = obtain_model(&args, &profile);
                let service = PredictionService::start(model, profile, cfg);
                let client = service.client();
                let resps = client
                    .predict_many(reqs)
                    .unwrap_or_else(|e| bail(&format!("request failed: {e}")));
                for r in &resps {
                    print_response(r);
                }
                let m = service.metrics();
                eprintln!(
                    "[predict] {} served: {} batches (avg {:.1}/batch), cache {:.0}% hit",
                    m.completed,
                    m.batches,
                    m.avg_batch,
                    m.cache_hit_rate * 100.0
                );
            }
        }
        "help" | "--help" | "-h" => println!("{}", usage_text()),
        _ => usage(),
    }
}
