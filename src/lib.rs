//! # concorde-suite
//!
//! Facade for the Concorde reproduction — *Concorde: Fast and Accurate CPU
//! Performance Modeling with Compositional Analytical-ML Fusion* (ISCA 2025)
//! — re-exporting every workspace crate under one roof. See the repository
//! `README.md` for the architecture overview and `DESIGN.md` for the complete
//! system inventory.
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`trace`] | `concorde-trace` | synthetic workloads + instruction traces |
//! | [`branch`] | `concorde-branch` | TAGE / Simple / BTB predictors |
//! | [`cache`] | `concorde-cache` | cache hierarchy + in-order simulation |
//! | [`cyclesim`] | `concorde-cyclesim` | reference cycle-level OoO simulator |
//! | [`analytic`] | `concorde-analytic` | trace analysis + per-resource models |
//! | [`ml`] | `concorde-ml` | MLP/LSTM/AdamW substrate |
//! | [`core`] | `concorde-core` | the Concorde model itself |
//! | [`attribution`] | `concorde-attribution` | Shapley performance attribution |
//! | [`baseline`] | `concorde-baseline` | TAO-like sequence baseline |
//! | [`riscv`] | `concorde-riscv` | RV32IM ELF ingestion → real-program traces |
//! | [`serve`] | `concorde-serve` | batched, cached inference serving (TCP + in-process) |
//!
//! ## Quickstart
//!
//! ```
//! use concorde_suite::prelude::*;
//!
//! // A pointer-chasing (505.mcf_r-like) region on the ARM N1 configuration.
//! let spec = by_id("S1").unwrap();
//! let region = generate_region(&spec, 0, 0, 4_096);
//! let arch = MicroArch::arm_n1();
//! let result = simulate(&region.instrs, &arch, SimOptions::default());
//! assert!(result.cpi() > 0.2);
//! ```

pub use concorde_analytic as analytic;
pub use concorde_attribution as attribution;
pub use concorde_baseline as baseline;
pub use concorde_branch as branch;
pub use concorde_cache as cache;
pub use concorde_core as core;
pub use concorde_cyclesim as cyclesim;
pub use concorde_ml as ml;
pub use concorde_riscv as riscv;
pub use concorde_serve as serve;
pub use concorde_trace as trace;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use concorde_analytic::prelude::*;
    pub use concorde_attribution::{
        ablation_deltas, cache_vs_lq_groups, default_groups, shapley_exact, shapley_mc, ParamGroup,
    };
    pub use concorde_baseline::{featurize, train_baseline, BaselineConfig, TaoBaseline};
    pub use concorde_branch::{BranchStats, BranchUnit, PredictorKind};
    pub use concorde_cache::{simulate_inorder, CacheLevel, Hierarchy, LatencyMap, MemConfig};
    pub use concorde_core::prelude::*;
    pub use concorde_cyclesim::{
        design_space_size, quantized_space_size, simulate, simulate_warmed, MicroArch, ParamId,
        SimOptions, SimResult,
    };
    pub use concorde_ml::{AdamW, ErrorStats, HalvingSchedule, LstmRegressor, Mlp, MlpScratch};
    pub use concorde_riscv::RiscvWorkload;
    pub use concorde_serve::{
        parse_byte_size, ArchSpec, ByteSizeError, ClassSlo, Client, MetricsServer, MissPolicy,
        PredictRequest, PredictResponse, PredictionService, RequestClass, ServeConfig,
        ServiceStats, SweepScope, TcpClient,
    };
    pub use concorde_trace::{
        by_id, generate_region, resolve_registered, resolve_workload, sample_region, suite,
        DynTrace, Instruction, OpClass, RegionRef, ResolvedWorkload, WorkloadSpec,
    };
}
