//! Property test: flipping any single bit anywhere in a v4 store artifact
//! — header, store blob, padding, or checksum footer, at every arena
//! encoding — must surface as a typed `io::Error` from
//! [`StoreArtifact::from_bytes`]. Never a panic, never a silently wrong
//! store. The FNV-1a footer covers every byte before it, so a blob flip
//! changes the computed sum and a footer flip changes the stored one;
//! header flips may instead trip the (bounds-checked) header parser, which
//! is equally acceptable as long as the failure is a typed error.

use std::sync::OnceLock;

use concorde_suite::prelude::*;
use proptest::prelude::*;

/// One small artifact per arena encoding, serialized once and shared by
/// every proptest case (precompute dominates the cost otherwise).
fn encoded_artifacts() -> &'static [Vec<u8>; 3] {
    static CACHE: OnceLock<[Vec<u8>; 3]> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut profile = ReproProfile::quick();
        profile.region_len = 512;
        profile.warmup_len = 512;
        let spec = by_id("S5").unwrap();
        let region = generate_region(&spec, 0, 0, profile.region_len);
        let sweep = SweepConfig::quantized();
        let store = FeatureStore::precompute(&[], &region.instrs, &sweep, &profile);
        let key = |enc: &str| FeatureKey {
            workload: format!("S5-{enc}").into(),
            trace: 0,
            start: 0,
            region_len: profile.region_len as u32,
            sweep_hash: 0,
        };
        [ArenaEncoding::F32, ArenaEncoding::F16, ArenaEncoding::Int8]
            .map(|enc| StoreArtifact::new(key(enc.name()), store.reencoded(enc)).to_bytes())
    })
}

use concorde_suite::core::cache::{FeatureKey, StoreArtifact};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn any_single_bit_flip_is_rejected_with_a_typed_error(
        enc_idx in 0usize..3,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let pristine = &encoded_artifacts()[enc_idx];
        // Sanity: the untouched bytes still load (also proves any failure
        // below comes from the flip, not the fixture).
        prop_assert!(StoreArtifact::from_bytes(pristine).is_ok());

        let mut corrupt = pristine.clone();
        let pos = ((pos_frac * corrupt.len() as f64) as usize).min(corrupt.len() - 1);
        corrupt[pos] ^= 1u8 << bit;

        // A flipped bit anywhere must fail typed — from_bytes returning Err
        // here means no panic and no silently-wrong store.
        let result = StoreArtifact::from_bytes(&corrupt);
        prop_assert!(
            result.is_err(),
            "flip at byte {} bit {} (encoding #{}) loaded as a valid artifact",
            pos, bit, enc_idx
        );
        let err = result.unwrap_err();
        // Past the fixed-size header every flip is caught by the checksum
        // itself, with the actionable message operators see on `--preload`.
        if pos >= 64 {
            let msg = err.to_string();
            prop_assert!(
                msg.contains("checksum mismatch"),
                "blob/footer flip at {pos} gave a non-checksum error: {msg}"
            );
        }
    }
}
