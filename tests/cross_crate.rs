//! Cross-crate consistency: the analytical models, the feature store, and the
//! cycle-level simulator must agree on first-order structure.

use concorde_suite::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn warmed(id: &str, warm: usize, n: usize) -> (Vec<Instruction>, Vec<Instruction>) {
    let spec = by_id(id).unwrap();
    let full = generate_region(&spec, 0, 0, warm + n);
    let (w, r) = full.instrs.split_at(warm);
    (w.to_vec(), r.to_vec())
}

#[test]
fn rob_model_upper_bounds_simulator_ipc() {
    // The ROB model assumes a perfect frontend and unlimited bandwidth, so
    // its throughput must (approximately) upper-bound the simulator's IPC at
    // the same ROB size when all other resources are maxed.
    let (w, r) = warmed("S5", 16_000, 8_000);
    let info = analyze_static(&r);
    let data = analyze_data(
        &w,
        &r,
        MemConfig {
            l1i_kb: 256,
            l1d_kb: 256,
            l2_kb: 4096,
            prefetch_degree: 4,
        },
    );
    for rob in [16u32, 64, 256] {
        let model_thr = rob_model(&info, &data, rob).overall_throughput();
        let arch = MicroArch {
            rob_size: rob,
            ..MicroArch::big_core()
        };
        let sim = simulate_warmed(&w, &r, &arch, SimOptions::default());
        assert!(
            model_thr >= sim.ipc() * 0.8,
            "ROB={rob}: analytical bound {model_thr:.3} should not sit far below simulated IPC {:.3}",
            sim.ipc()
        );
    }
}

#[test]
fn min_bound_correlates_with_simulated_cpi_across_workloads() {
    let profile = ReproProfile::quick();
    let arch = MicroArch::arm_n1();
    let mut bounds = Vec::new();
    let mut sims = Vec::new();
    for id in ["O1", "S5", "S6", "P11", "S1"] {
        let (w, r) = warmed(id, profile.warmup_len, profile.region_len);
        let store = FeatureStore::precompute(&w, &r, &SweepConfig::for_arch(&arch), &profile);
        bounds.push(store.min_bound_cpi(&arch));
        sims.push(simulate_warmed(&w, &r, &arch, SimOptions::default()).cpi());
    }
    // Rank agreement between the analytical bound and ground truth: the most
    // memory-bound workload must rank high in both, the resident kernel low.
    let rank = |v: &[f64]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap());
        idx
    };
    let rb = rank(&bounds);
    let rs = rank(&sims);
    assert_eq!(
        rb[0], rs[0],
        "fastest workload must match: bounds {bounds:?} sims {sims:?}"
    );
    assert_eq!(
        rb[rb.len() - 1],
        rs[rs.len() - 1],
        "slowest workload must match: bounds {bounds:?} sims {sims:?}"
    );
}

#[test]
fn feature_store_is_finite_for_random_architectures() {
    let profile = ReproProfile::quick();
    let (w, r) = warmed("P9", profile.warmup_len, profile.region_len);
    let mut rng = ChaCha12Rng::seed_from_u64(77);
    for _ in 0..10 {
        let arch = MicroArch::sample(&mut rng);
        let store = FeatureStore::precompute(&w, &r, &SweepConfig::for_arch(&arch), &profile);
        let f = store.features(&arch, FeatureVariant::Full);
        assert!(
            f.iter().all(|x| x.is_finite()),
            "non-finite feature for {arch:?}"
        );
        assert!(store.min_bound_cpi(&arch).is_finite());
    }
}

#[test]
fn branch_rate_feature_matches_simulator_rates() {
    // Trace analysis predicts the mispredict rate analytically for Simple BP;
    // the simulator realizes it stochastically. They must agree closely.
    let (w, r) = warmed("S8", 16_000, 16_000);
    let info = analyze_branches(&w, &r);
    for pct in [10u8, 50] {
        let kind = PredictorKind::Simple { miss_pct: pct };
        let arch = MicroArch {
            predictor: kind,
            ..MicroArch::arm_n1()
        };
        let sim = simulate_warmed(&w, &r, &arch, SimOptions::default());
        let analytic_rate = info.mispredict_rate(kind);
        let sim_rate = sim.branch.mispredict_rate();
        assert!(
            (analytic_rate - sim_rate).abs() < 0.05,
            "pct={pct}: analytic {analytic_rate:.3} vs simulated {sim_rate:.3}"
        );
    }
}

#[test]
fn shapley_on_the_simulator_satisfies_efficiency() {
    let (w, r) = warmed("S6", 8_000, 6_000);
    let base = MicroArch::big_core();
    let target = MicroArch::arm_n1();
    let groups = cache_vs_lq_groups();
    let f = |a: &MicroArch| simulate_warmed(&w, &r, a, SimOptions::default()).cpi();
    let s = shapley_exact(f, &base, &target, &groups);
    let total: f64 = s.values.iter().sum();
    assert!(
        (total - (s.target_value - s.base_value)).abs() < 1e-9,
        "efficiency: {total} vs {}",
        s.target_value - s.base_value
    );
    assert!(s.base_value > 0.0 && s.target_value > 0.0);
}

#[test]
fn quantized_store_predictions_stay_close_to_exact() {
    // Quantizing ROB/LQ/SQ to powers of two (§5.2.3) must produce features
    // whose min-bound CPI is close to the exact-value store's.
    let profile = ReproProfile::quick();
    let (w, r) = warmed("S2", profile.warmup_len, profile.region_len);
    let arch = MicroArch {
        rob_size: 100,
        lq_size: 22,
        sq_size: 30,
        ..MicroArch::arm_n1()
    };
    let exact = FeatureStore::precompute(&w, &r, &SweepConfig::for_arch(&arch), &profile);
    let quant = FeatureStore::precompute(&w, &r, &SweepConfig::quantized(), &profile);
    let a = exact.min_bound_cpi(&arch);
    let b = quant.min_bound_cpi(&arch);
    assert!(
        (a - b).abs() / a < 0.35,
        "quantized bound {b:.3} too far from exact {a:.3}"
    );
}
