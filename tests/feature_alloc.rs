//! Proves `FeatureStore::features_into` performs **zero heap allocations**
//! per call, via a counting global allocator. Kept in its own integration
//! test binary so no other test's allocations race with the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use concorde_suite::prelude::*;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

#[test]
fn features_into_allocates_nothing() {
    let profile = ReproProfile::quick();
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let n1 = MicroArch::arm_n1();
    let big = MicroArch::big_core();
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_pair(&big, &n1), &profile);
    let mut off = n1;
    off.rob_size = 200;
    off.lq_size = 40;
    off.alu_width = 5;

    // The zero-allocation guarantee must hold for every arena encoding:
    // f16/f32 conversion and int8 affine dequantization happen in-place on
    // the caller's buffer, never through a temporary.
    for enc in ArenaEncoding::ALL {
        let store = store.reencoded(enc);
        for arch in [n1, big, off] {
            for v in [
                FeatureVariant::Base,
                FeatureVariant::BaseBranch,
                FeatureVariant::Full,
            ] {
                let mut buf = vec![0.0f32; FeatureSchema::dim_for(profile.encoding, v)];
                // Warm once (first call has nothing left to lazily set up,
                // but keep the measurement honest anyway).
                store.features_into(&arch, v, &mut buf);
                let before = ALLOCS.load(Ordering::SeqCst);
                for _ in 0..16 {
                    store.features_into(&arch, v, &mut buf);
                }
                let after = ALLOCS.load(Ordering::SeqCst);
                assert_eq!(
                    after - before,
                    0,
                    "features_into allocated {} times for {v:?} under {enc}",
                    after - before
                );
            }
        }
    }
}
