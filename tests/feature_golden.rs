//! Golden equivalence tests for the feature pipeline.
//!
//! The FNV-1a hashes below were generated from the seed (pre-refactor)
//! nested-HashMap `FeatureStore` implementation on this exact deterministic
//! input. They pin that the arena-backed, schema-driven rewrite assembles
//! **bitwise-identical** feature vectors across all three variants, for
//! on-grid and off-grid (nearest-grid quantized) queries, and that the
//! binary artifact format round-trips without perturbing a single bit.

use concorde_suite::prelude::*;

fn fnv1a(xs: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct Fixture {
    s1: FeatureStore,
    s2: FeatureStore,
    n1: MicroArch,
    big: MicroArch,
    off: MicroArch,
}

fn fixture() -> Fixture {
    let profile = ReproProfile::quick();
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let n1 = MicroArch::arm_n1();
    let big = MicroArch::big_core();
    let s1 = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&n1), &profile);
    let s2 = FeatureStore::precompute(w, r, &SweepConfig::for_pair(&big, &n1), &profile);
    let mut off = n1;
    off.rob_size = 200; // off-grid on every axis: lookups must quantize
    off.lq_size = 40;
    off.mem.l1d_kb = 96;
    off.alu_width = 5;
    Fixture {
        s1,
        s2,
        n1,
        big,
        off,
    }
}

/// `(store, arch, variant) → (hash, dim)` pinned from the seed assembly.
const GOLDEN: &[(&str, u64)] = &[
    ("s1_n1_Base", 0x0e3b40bbf7f4f771),
    ("s2_n1_Base", 0x0e3b40bbf7f4f771),
    ("s2_big_Base", 0xbecc9ab1f5e6cc9e),
    ("s2_off_Base", 0x85d6b38a93dff90b),
    ("s1_n1_BaseBranch", 0xe73942636aa1b6df),
    ("s2_n1_BaseBranch", 0xe73942636aa1b6df),
    ("s2_big_BaseBranch", 0xec4a917ccea90119),
    ("s2_off_BaseBranch", 0xf0dc62c0ba60cba5),
    ("s1_n1_Full", 0xedecbc54bd8154ec),
    ("s2_n1_Full", 0xedecbc54bd8154ec),
    ("s2_big_Full", 0xf9d9aa8d1fa0f75f),
    ("s2_off_Full", 0x4002bf319679ae42),
];

#[test]
fn feature_vectors_match_seed_assembly_bitwise() {
    let f = fixture();
    let mut got = Vec::new();
    for v in [
        FeatureVariant::Base,
        FeatureVariant::BaseBranch,
        FeatureVariant::Full,
    ] {
        let tag = |s| format!("{s}_{v:?}");
        got.push((tag("s1_n1"), fnv1a(&f.s1.features(&f.n1, v))));
        got.push((tag("s2_n1"), fnv1a(&f.s2.features(&f.n1, v))));
        got.push((tag("s2_big"), fnv1a(&f.s2.features(&f.big, v))));
        got.push((tag("s2_off"), fnv1a(&f.s2.features(&f.off, v))));
    }
    for (name, want) in GOLDEN {
        let (_, have) = got
            .iter()
            .find(|(n, _)| n == name)
            .expect("every golden case is exercised");
        assert_eq!(
            have, want,
            "{name}: feature vector diverged from the seed assembly"
        );
    }
    // Seed dims for the quick (levels: 8 → 17-dim) encoding.
    assert_eq!(f.s1.features(&f.n1, FeatureVariant::Base).len(), 211);
    assert_eq!(f.s1.features(&f.n1, FeatureVariant::BaseBranch).len(), 290);
    assert_eq!(f.s1.features(&f.n1, FeatureVariant::Full).len(), 681);
}

#[test]
fn scalar_outputs_match_seed_values() {
    let f = fixture();
    // Exact values printed by the seed implementation.
    assert_eq!(f.s1.min_bound_cpi(&f.n1), 2.950_439_453_125);
    assert_eq!(f.s2.min_bound_cpi(&f.off), 2.838_134_765_625);
    assert_eq!(f.s1.encoded_bytes(), 2992);
    assert_eq!(f.s2.encoded_bytes(), 23256);
    assert_eq!(f.s1.load_exec_estimate(f.n1.mem), 42126);
}

#[test]
fn features_into_is_bitwise_equal_to_features() {
    let f = fixture();
    for arch in [f.n1, f.big, f.off] {
        for v in [
            FeatureVariant::Base,
            FeatureVariant::BaseBranch,
            FeatureVariant::Full,
        ] {
            let alloc = f.s2.features(&arch, v);
            let mut buf = vec![f32::NAN; alloc.len()];
            f.s2.features_into(&arch, v, &mut buf);
            assert_eq!(
                alloc.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                buf.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{v:?}"
            );
        }
    }
}

#[test]
fn artifact_roundtrip_is_bitwise_identical() {
    let f = fixture();
    for (i, store) in [&f.s1, &f.s2].into_iter().enumerate() {
        let key = FeatureKey {
            workload: "S5".into(),
            trace: 0,
            start: 0,
            region_len: 4096,
            sweep_hash: 7 + i as u64,
        };
        let artifact = StoreArtifact::new(key.clone(), store.clone());
        let bytes = artifact.to_bytes();
        let back = StoreArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.key, key);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.store.to_bytes(), store.to_bytes());
        for v in [FeatureVariant::Base, FeatureVariant::Full] {
            assert_eq!(
                store
                    .features(&f.off, v)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                back.store
                    .features(&f.off, v)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "{v:?}"
            );
        }
    }
}

#[test]
fn parallel_precompute_matches_serial_bitwise() {
    let profile = ReproProfile::quick();
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let sweep = SweepConfig::for_pair(&MicroArch::big_core(), &MicroArch::arm_n1());
    let serial = FeatureStore::precompute_threaded(w, r, &sweep, &profile, 1);
    for threads in [2, 4, 8] {
        let par = FeatureStore::precompute_threaded(w, r, &sweep, &profile, threads);
        assert_eq!(
            serial.to_bytes(),
            par.to_bytes(),
            "{threads}-thread precompute diverged"
        );
    }
}
