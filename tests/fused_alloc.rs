//! Proves the fused int8 hot path — encoded-segment assembly
//! (`features_quantized_into`) plus quantized prediction
//! (`predict_quantized`) — performs **zero heap allocations** per request
//! once the buffers are warm. Since the f32 feature vector would need a
//! `dim`-sized allocation (or a pre-sized scratch this path does not own),
//! zero allocations also pins the "never materializes the f32 vector"
//! contract. Own test binary so no other test's allocations race the
//! counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use concorde_suite::ml::{QuantFeatureBuf, QuantScratch};
use concorde_suite::prelude::*;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

#[test]
fn fused_int8_path_allocates_nothing_when_warm() {
    let profile = ReproProfile {
        window_k: 64,
        ..ReproProfile::quick()
    };
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let n1 = MicroArch::arm_n1();
    let big = MicroArch::big_core();
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_pair(&big, &n1), &profile);

    let mut p = profile.clone();
    p.epochs = 2;
    let data = generate_dataset(&DatasetConfig {
        profile: p.clone(),
        n: 8,
        seed: 23,
        arch: ArchSampling::Random,
        workloads: Some(vec![15]),
        threads: 0,
    });
    let model = train_model(&data, &p, &TrainOptions::default());
    let qmlp = model.quantized();

    let mut off = n1;
    off.rob_size = 200;
    off.lq_size = 40;

    let mut buf = QuantFeatureBuf::default();
    let mut scratch = QuantScratch::default();
    // The contract holds for every store encoding: int8 blocks ride through
    // as raw bytes, f16/f32 blocks as plain f32 segments.
    for enc in ArenaEncoding::ALL {
        let store = store.reencoded(enc);
        for arch in [n1, big, off] {
            // Warm: buffer pools and scratch grow to steady-state capacity.
            let cold = model.predict_quantized(&qmlp, &store, &arch, &mut buf, &mut scratch);
            let before = ALLOCS.load(Ordering::SeqCst);
            let mut warm = 0.0;
            for _ in 0..16 {
                warm = model.predict_quantized(&qmlp, &store, &arch, &mut buf, &mut scratch);
            }
            let after = ALLOCS.load(Ordering::SeqCst);
            assert_eq!(
                after - before,
                0,
                "fused path allocated {} times under {enc}",
                after - before
            );
            assert_eq!(
                cold.to_bits(),
                warm.to_bits(),
                "warm path changed the answer"
            );
        }
    }
}
