//! Vector-kernel dispatch coverage: scalar↔SIMD max-ULP equivalence over
//! random layer shapes and ragged batches (proptest), the int8-weight CPI
//! drift pin mirroring the arena-quantization contract, and bitwise
//! equality of the fused dequantize-assembly path against the materialized
//! f32 feature vector.

use concorde_suite::ml::{
    active_kernel, detected_kernel, forced_scalar, kernel_name, ulp_distance, KernelKind,
    QuantFeatureBuf, QuantScratch,
};
use concorde_suite::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Scalar and FMA kernels sum each output in the same left-to-right order;
/// the only divergence is the fused multiply-add's single rounding per term.
/// Per layer that is ≤ `in_dim` half-ULP perturbations, and layers compound,
/// so the bound is dozens-not-millions; 256 holds with wide margin for the
/// shapes below (measured maxima are single digits).
/// ULP is the primary metric; the `1e-5` absolute escape hatch below only
/// covers catastrophic cancellation in the (relu-free) output layer, where a
/// near-zero sum makes ULP distance meaningless.
const MAX_ULP: u32 = 256;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The dispatched SIMD kernel agrees with the pinned scalar kernel to
    /// within `MAX_ULP` for random layer shapes, depths, batch sizes
    /// (including ragged, non-multiple-of-8 tails), and inputs. Trivially
    /// green on hosts without a vector unit (both runs take the scalar
    /// path).
    #[test]
    fn simd_matches_scalar_within_ulp_bound(
        seed in any::<u64>(),
        n in 1usize..21,
        din in 1usize..40,
        dh in 1usize..24,
        deep in 0usize..2,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let dims: Vec<usize> = if deep == 1 {
            vec![din, dh, dh.div_ceil(2), 1]
        } else {
            vec![din, dh, 1]
        };
        let mlp = Mlp::new(&dims, &mut rng);
        let xs: Vec<f32> = (0..n * din)
            .map(|i| ((i as f32) * 0.37 + (seed % 7) as f32).sin() * 4.0)
            .collect();
        let mut scratch = MlpScratch::default();
        let mut simd = vec![0.0f32; n];
        mlp.predict_batch_into(&xs, &mut simd, &mut scratch);
        let mut scalar = vec![0.0f32; n];
        {
            let _g = forced_scalar();
            prop_assert_eq!(active_kernel(), KernelKind::Scalar);
            mlp.predict_batch_into(&xs, &mut scalar, &mut scratch);
        }
        for (s, (a, b)) in simd.iter().zip(&scalar).enumerate() {
            let ulp = ulp_distance(*a, *b);
            prop_assert!(
                ulp <= MAX_ULP || (a - b).abs() <= 1e-5,
                "row {} of {} diverged: simd {} vs scalar {} ({} ULP)",
                s, n, a, b, ulp
            );
        }
    }

    /// Int8-weight inference tracks the f32 model within the quantization
    /// drift budget for random shapes and inputs (the micro-level version
    /// of the CPI pin below).
    #[test]
    fn int8_mlp_tracks_f32_for_random_shapes(
        seed in any::<u64>(),
        n in 1usize..13,
        din in 1usize..24,
        dh in 2usize..16,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&[din, dh, 1], &mut rng);
        let qmlp = mlp.quantize();
        let mut scratch = MlpScratch::default();
        let mut qscratch = QuantScratch::default();
        let xs: Vec<f32> = (0..n * din)
            .map(|i| ((i as f32) * 0.53 + (seed % 11) as f32).cos() * 2.0)
            .collect();
        let mut yf = vec![0.0f32; n];
        mlp.predict_batch_into(&xs, &mut yf, &mut scratch);
        let mut yq = vec![0.0f32; n];
        qmlp.predict_batch_into(&xs, &mut yq, &mut qscratch);
        for (s, (f, q)) in yf.iter().zip(&yq).enumerate() {
            prop_assert!(
                (f - q).abs() <= 0.05 * f.abs() + 0.05,
                "row {}: f32 {} vs int8 {}",
                s, f, q
            );
        }
    }
}

#[test]
fn kernel_name_matches_active_kernel() {
    assert_eq!(kernel_name(), active_kernel().name());
    let _g = forced_scalar();
    assert_eq!(kernel_name(), "scalar");
}

#[test]
fn detected_kernel_matches_arch_features() {
    // `detected_kernel` reports raw host capability, ignoring overrides.
    let k = detected_kernel();
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        assert_eq!(k, KernelKind::Avx2Fma);
    }
    #[cfg(target_arch = "aarch64")]
    assert_eq!(k, KernelKind::Neon);
    // Dispatch follows detection — except on the CI scalar leg, where the
    // env override must pin every thread to the scalar kernel.
    let env_scalar =
        std::env::var("CONCORDE_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
    if env_scalar {
        assert_eq!(active_kernel(), KernelKind::Scalar);
    } else {
        assert_eq!(active_kernel(), k);
    }
}

// ---------------------------------------------------------------------------
// End-to-end pins on a real feature store + trained model, mirroring
// tests/quantization.rs so the model-weight contract reads like the
// arena-encoding contract it extends.

fn quick_profile() -> ReproProfile {
    ReproProfile {
        window_k: 64,
        ..ReproProfile::quick()
    }
}

fn reference_store() -> (FeatureStore, MicroArch, MicroArch) {
    let profile = quick_profile();
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let n1 = MicroArch::arm_n1();
    let big = MicroArch::big_core();
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_pair(&big, &n1), &profile);
    (store, n1, big)
}

fn tiny_model(profile: &ReproProfile) -> ConcordePredictor {
    let mut p = profile.clone();
    p.epochs = 3;
    let data = generate_dataset(&DatasetConfig {
        profile: p.clone(),
        n: 16,
        seed: 23,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    train_model(&data, &p, &TrainOptions::default())
}

/// The int8-weight drift pin: CPI from the quantized model stays within 5%
/// of the f32 reference — the same budget the int8 *arena* encoding gets in
/// `tests/quantization.rs`, and independent of the kernel in use.
#[test]
fn int8_model_cpi_drift_below_5pct() {
    let profile = quick_profile();
    let model = tiny_model(&profile);
    let qmlp = model.quantized();
    let (store, n1, big) = reference_store();
    let mut off = n1;
    off.rob_size = 200;
    off.lq_size = 40;
    let mut buf = QuantFeatureBuf::default();
    let mut scratch = QuantScratch::default();
    for arch in [n1, big, off] {
        let reference = model.predict(&store, &arch);
        assert!(reference.is_finite() && reference > 0.0);
        let q = model.predict_quantized(&qmlp, &store, &arch, &mut buf, &mut scratch);
        let delta = (q - reference).abs() / reference;
        assert!(
            delta <= 0.05,
            "int8-model CPI drift {:.4}% exceeds 5% (f32 CPI {reference:.4} → int8 {q:.4})",
            delta * 100.0
        );
    }
}

/// Composition: int8 *store* feeding the int8 *model* through the fused
/// path drifts from the same store under the f32 model by the model-quant
/// budget alone (the store error is common to both sides).
#[test]
fn int8_store_int8_model_compose() {
    let profile = quick_profile();
    let model = tiny_model(&profile);
    let qmlp = model.quantized();
    let (store, n1, big) = reference_store();
    let int8_store = store.reencoded(ArenaEncoding::Int8);
    let mut buf = QuantFeatureBuf::default();
    let mut scratch = QuantScratch::default();
    for arch in [n1, big] {
        let reference = model.predict(&int8_store, &arch);
        let fused = model.predict_quantized(&qmlp, &int8_store, &arch, &mut buf, &mut scratch);
        let delta = (fused - reference).abs() / reference;
        assert!(
            delta <= 0.05,
            "fused int8×int8 drift {:.4}% vs f32 model on the same store",
            delta * 100.0
        );
    }
}

/// The fused assembly's segments dequantize to exactly the f32 vector
/// `features_into` materializes — for every arena encoding, variant, and a
/// grid-off architecture. Bitwise, not approximate: the fused path reuses
/// `write_entry`'s arithmetic instead of re-deriving it.
#[test]
fn quantized_segments_materialize_bitwise() {
    let (store, n1, big) = reference_store();
    let mut off = n1;
    off.rob_size = 200;
    off.lq_size = 40;
    let mut buf = QuantFeatureBuf::default();
    for enc in ArenaEncoding::ALL {
        let store = store.reencoded(enc);
        for arch in [n1, big, off] {
            for v in [
                FeatureVariant::Base,
                FeatureVariant::BaseBranch,
                FeatureVariant::Full,
            ] {
                let reference = store.features(&arch, v);
                store.features_quantized_into(&arch, v, &mut buf);
                assert_eq!(buf.len(), reference.len());
                let materialized = buf.materialize();
                for (i, (m, r)) in materialized.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        m.to_bits(),
                        r.to_bits(),
                        "feature {i} of {v:?} under {enc}: fused {m} vs materialized {r}"
                    );
                }
            }
        }
    }
}

/// Fused prediction (segments straight into the quantized first layer)
/// equals quantized prediction over the materialized vector bitwise — the
/// fusion changes where dequantization happens, not what is computed.
#[test]
fn fused_prediction_matches_materialized_bitwise() {
    let profile = quick_profile();
    let model = tiny_model(&profile);
    let qmlp = model.quantized();
    let (store, n1, big) = reference_store();
    let mut buf = QuantFeatureBuf::default();
    let mut scratch = QuantScratch::default();
    for enc in [ArenaEncoding::F32, ArenaEncoding::Int8] {
        let store = store.reencoded(enc);
        for arch in [n1, big] {
            let fused = model.predict_quantized(&qmlp, &store, &arch, &mut buf, &mut scratch);
            let feats = store.features(&arch, model.layout.variant);
            let materialized = model.predict_features_quantized(&qmlp, &feats, &mut scratch);
            assert_eq!(
                fused.to_bits(),
                materialized.to_bits(),
                "under {enc}/{arch:?}: fused {fused} vs materialized {materialized}"
            );
        }
    }
}
