//! Proves the zero-copy claims of `StoreArtifact::map`:
//!
//! 1. Mapping an artifact allocates only metadata (grids, keys, the struct) —
//!    **no arena bytes pass through the heap** — measured with a
//!    byte-counting global allocator against the owned `load` baseline.
//! 2. Evicting a mapped store from the serving cache (and dropping the last
//!    reader) releases the mapping (`munmap`), observed via the live-mapping
//!    counter and `/proc/self/maps`.
//!
//! Kept as a single test in its own binary so no concurrent test's
//! allocations or mappings race the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use concorde_suite::core::cache::{FeatureKey, ShardedStoreCache};
use concorde_suite::prelude::*;

struct Counting;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn allocated<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOC_BYTES.load(Ordering::SeqCst);
    let out = f();
    (out, ALLOC_BYTES.load(Ordering::SeqCst) - before)
}

#[cfg(target_os = "linux")]
fn maps_mention(path: &std::path::Path) -> bool {
    std::fs::read_to_string("/proc/self/maps")
        .map(|m| m.contains(path.file_name().unwrap().to_str().unwrap()))
        .unwrap_or(false)
}

#[test]
#[cfg_attr(
    not(unix),
    ignore = "mmap loading is unix-only; other targets read owned"
)]
fn mapped_preload_copies_no_arena_bytes_and_eviction_unmaps() {
    // A store with enough arena payload that a copy would dominate any
    // metadata allocation by orders of magnitude.
    let profile = ReproProfile {
        window_k: 64,
        ..ReproProfile::quick()
    };
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let n1 = MicroArch::arm_n1();
    let big = MicroArch::big_core();
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_pair(&big, &n1), &profile);
    let key = FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start: 0,
        region_len: profile.region_len as u32,
        sweep_hash: 5,
    };
    let path = std::env::temp_dir().join(format!("concorde_mmap_alloc_{}.cfa", std::process::id()));
    StoreArtifact::new(key.clone(), store).save(&path).unwrap();
    let file_bytes = std::fs::metadata(&path).unwrap().len();
    assert!(file_bytes > 64 * 1024, "fixture too small: {file_bytes} B");

    // Owned load allocates at least the whole file (read buffer) plus the
    // aligned arena copy; the map must stay an order of magnitude under it.
    let (owned, owned_bytes) = allocated(|| StoreArtifact::load(&path).unwrap());
    assert!(owned_bytes >= file_bytes, "owned load reads the file");
    let maps_before = MappedStore::live_mmap_count();
    let (mapped, map_bytes) = allocated(|| StoreArtifact::map(&path).unwrap());
    assert!(mapped.store.is_mapped());
    assert_eq!(MappedStore::live_mmap_count(), maps_before + 1);
    assert!(
        map_bytes * 8 < owned_bytes,
        "mapping must not copy arena bytes: map allocated {map_bytes} B \
         vs owned {owned_bytes} B (file {file_bytes} B)"
    );
    assert!(
        map_bytes < file_bytes / 4,
        "map-time allocations ({map_bytes} B) must be metadata-sized, \
         not payload-sized (file {file_bytes} B)"
    );
    #[cfg(target_os = "linux")]
    assert!(
        maps_mention(&path),
        "mapping must appear in /proc/self/maps"
    );

    // Mapped and owned stores must agree bit-for-bit.
    let a = mapped.store.features(&n1, FeatureVariant::Full);
    let b = owned.store.features(&n1, FeatureVariant::Full);
    assert_eq!(
        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );

    // Cache admission accounts the quantized/mapped store like any other,
    // and *evicting* it releases the mapping once the last reader drops.
    let mapped_store = Arc::new(mapped.store);
    let bytes = mapped_store.approx_bytes();
    let cache = ShardedStoreCache::new(1, bytes + bytes / 2);
    cache.insert(key.clone(), Arc::clone(&mapped_store));
    drop(mapped_store); // the cache now holds the only reference
    assert_eq!(
        MappedStore::live_mmap_count(),
        maps_before + 1,
        "resident cache entry keeps the mapping alive"
    );
    // Insert a second store under the same budget → the mapped one is LRU.
    let evicted_key = FeatureKey {
        start: 1,
        ..key.clone()
    };
    let evicted = cache.insert(evicted_key, Arc::new(owned.store.clone()));
    assert_eq!(evicted, vec![key]);
    assert_eq!(
        MappedStore::live_mmap_count(),
        maps_before,
        "eviction must munmap once no reader holds the store"
    );
    #[cfg(target_os = "linux")]
    assert!(
        !maps_mention(&path),
        "released mapping must leave /proc/self/maps"
    );
    std::fs::remove_file(&path).ok();
}
