//! Every Table 1 parameter must influence the simulator in the right
//! direction on a workload that stresses it — the correctness net under all
//! reproduction claims (if a parameter were dead or inverted, Concorde would
//! happily learn the wrong physics).

use concorde_suite::prelude::*;

fn warmed(id: &str, warm: usize, n: usize) -> (Vec<Instruction>, Vec<Instruction>) {
    let spec = by_id(id).unwrap();
    let full = generate_region(&spec, 0, 0, warm + n);
    let (w, r) = full.instrs.split_at(warm);
    (w.to_vec(), r.to_vec())
}

fn cpi(w: &[Instruction], r: &[Instruction], arch: &MicroArch) -> f64 {
    simulate_warmed(w, r, arch, SimOptions::default()).cpi()
}

/// Asserts `shrink(base)` is at least `factor`× slower than `base`.
fn assert_hurts(
    w: &[Instruction],
    r: &[Instruction],
    base: MicroArch,
    shrink: impl Fn(&mut MicroArch),
    factor: f64,
    what: &str,
) {
    let mut small = base;
    shrink(&mut small);
    let big_cpi = cpi(w, r, &base);
    let small_cpi = cpi(w, r, &small);
    assert!(
        small_cpi > big_cpi * factor,
        "{what}: shrinking should hurt; big {big_cpi:.3} vs small {small_cpi:.3}"
    );
}

#[test]
fn rob_size_matters_on_mlp_workload() {
    let (w, r) = warmed("P13", 16_000, 10_000);
    assert_hurts(
        &w,
        &r,
        MicroArch::big_core(),
        |a| a.rob_size = 8,
        1.3,
        "ROB",
    );
}

#[test]
fn load_queue_matters_on_memory_workload() {
    let (w, r) = warmed("P11", 16_000, 10_000);
    assert_hurts(&w, &r, MicroArch::big_core(), |a| a.lq_size = 2, 1.3, "LQ");
}

#[test]
fn store_queue_matters_on_store_heavy_workload() {
    let (w, r) = warmed("P4", 16_000, 10_000);
    assert_hurts(&w, &r, MicroArch::big_core(), |a| a.sq_size = 1, 1.1, "SQ");
}

#[test]
fn alu_width_matters_on_int_workload() {
    let (w, r) = warmed("O1", 16_000, 10_000);
    assert_hurts(
        &w,
        &r,
        MicroArch::big_core(),
        |a| a.alu_width = 1,
        1.2,
        "ALU width",
    );
}

#[test]
fn fp_width_matters_on_pure_fp_stream() {
    // Hand-crafted: independent FP adds — FP issue width binds exactly.
    let r: Vec<Instruction> = (0..4000u64)
        .map(|i| {
            Instruction::compute(
                0x1000 + i % 512 * 4,
                OpClass::FpAlu,
                [None, None],
                Some((32 + (i % 16)) as u8),
            )
        })
        .collect();
    // Warm the I-cache with the same stream so fetch fills don't dominate.
    let cpi_of = |fp: u32| {
        cpi(
            &r,
            &r,
            &MicroArch {
                fp_width: fp,
                ..MicroArch::big_core()
            },
        )
    };
    let one = cpi_of(1);
    let eight = cpi_of(8);
    assert!(one > 0.9, "FP width 1 must serialize the stream: {one:.3}");
    assert!(
        eight < one / 3.0,
        "FP width 8 must parallelize: {eight:.3} vs {one:.3}"
    );
}

#[test]
fn ls_width_and_pipes_matter_on_memory_workload() {
    let (w, r) = warmed("P10", 16_000, 10_000);
    assert_hurts(
        &w,
        &r,
        MicroArch::big_core(),
        |a| a.ls_width = 1,
        1.02,
        "LS width",
    );
    assert_hurts(
        &w,
        &r,
        MicroArch::big_core(),
        |a| {
            a.ls_pipes = 1;
            a.load_pipes = 0;
        },
        1.02,
        "pipes",
    );
}

#[test]
fn ls_width_binds_exactly_on_pure_load_stream() {
    // Hand-crafted: independent L1-resident loads — LS width is the bottleneck.
    let r: Vec<Instruction> = (0..4000u64)
        .map(|i| {
            Instruction::load(
                0x1000 + i % 64 * 4,
                0x10_0000 + (i % 64) * 64,
                [None, None],
                Some((i % 16) as u8),
            )
        })
        .collect();
    // Warm both caches with the same stream first.
    let cpi_of = |ls: u32| {
        cpi(
            &r,
            &r,
            &MicroArch {
                ls_width: ls,
                ..MicroArch::big_core()
            },
        )
    };
    let one = cpi_of(1);
    let four = cpi_of(4);
    assert!(one > 0.9, "LS width 1 must serialize loads: {one:.3}");
    assert!(four < one / 2.0, "LS width 4 must parallelize: {four:.3}");
}

#[test]
fn frontend_widths_matter_on_high_ipc_workload() {
    let (w, r) = warmed("O1", 16_000, 10_000);
    for (what, f) in [
        (
            "fetch width",
            Box::new(|a: &mut MicroArch| a.fetch_width = 1) as Box<dyn Fn(&mut MicroArch)>,
        ),
        (
            "decode width",
            Box::new(|a: &mut MicroArch| a.decode_width = 1),
        ),
        (
            "rename width",
            Box::new(|a: &mut MicroArch| a.rename_width = 1),
        ),
        (
            "commit width",
            Box::new(|a: &mut MicroArch| a.commit_width = 1),
        ),
    ] {
        assert_hurts(&w, &r, MicroArch::big_core(), |a| f(a), 1.3, what);
    }
}

#[test]
fn icache_fills_never_invert() {
    // The trace-driven fetch model stalls at the first missing line, so at
    // most one fill is demanded at a time and `max_icache_fills` has little
    // simulator-side effect (documented limitation, DESIGN.md §5; the
    // analytical fills model covers the parameter's feature-side behaviour).
    let (w, r) = warmed("S10", 16_000, 10_000);
    let f1 = cpi(
        &w,
        &r,
        &MicroArch {
            max_icache_fills: 1,
            ..MicroArch::big_core()
        },
    );
    let f32_ = cpi(
        &w,
        &r,
        &MicroArch {
            max_icache_fills: 32,
            ..MicroArch::big_core()
        },
    );
    assert!(
        f32_ <= f1 + 1e-9,
        "more fill slots must not slow fetch: {f32_:.3} vs {f1:.3}"
    );
}

#[test]
fn fetch_buffers_never_invert() {
    // In the cycle-level model, fetch buffers act through frontend queue
    // capacity only (L1i hits are not charged per line — a documented
    // simplification), so the effect is weak; it must never be inverted.
    let (w, r) = warmed("S10", 16_000, 10_000);
    let b1 = cpi(
        &w,
        &r,
        &MicroArch {
            fetch_buffers: 1,
            ..MicroArch::big_core()
        },
    );
    let b8 = cpi(
        &w,
        &r,
        &MicroArch {
            fetch_buffers: 8,
            ..MicroArch::big_core()
        },
    );
    assert!(
        b8 <= b1 + 1e-9,
        "more fetch buffers must not slow fetch: {b8:.3} vs {b1:.3}"
    );
}

#[test]
fn branch_predictor_matters_on_branchy_workload() {
    let (w, r) = warmed("S4", 24_000, 10_000);
    let base = MicroArch {
        predictor: PredictorKind::Simple { miss_pct: 0 },
        ..MicroArch::big_core()
    };
    assert_hurts(
        &w,
        &r,
        base,
        |a| a.predictor = PredictorKind::Simple { miss_pct: 60 },
        1.25,
        "branch predictor",
    );
}

#[test]
fn cache_sizes_matter_on_cache_sensitive_workload() {
    // S5's 256 KB working set fits a 256 KB L1d but overflows 16 KB; use the
    // N1 base so the big core's ROB/LQ don't hide the latency difference.
    let (w, r) = warmed("S5", 32_000, 10_000);
    let mut base = MicroArch::arm_n1();
    base.mem.l1d_kb = 256;
    assert_hurts(
        &w,
        &r,
        base,
        |a| {
            a.mem.l1d_kb = 16;
            a.mem.l2_kb = 512;
        },
        1.01,
        "D-side caches",
    );
}

#[test]
fn l1i_matters_on_big_code_workload() {
    // N1 base (narrow frontend, 8 fills): I-cache misses actually stall fetch.
    let (w, r) = warmed("P2", 24_000, 10_000);
    assert_hurts(
        &w,
        &r,
        MicroArch::arm_n1(),
        |a| a.mem.l1i_kb = 16,
        1.003,
        "L1i",
    );
}

#[test]
fn prefetcher_helps_streaming_workload() {
    let (w, r) = warmed("P1", 16_000, 10_000);
    let mut off = MicroArch::arm_n1();
    off.mem.prefetch_degree = 0;
    let mut on = off;
    on.mem.prefetch_degree = 4;
    let c_off = cpi(&w, &r, &off);
    let c_on = cpi(&w, &r, &on);
    assert!(
        c_on < c_off,
        "stride prefetching must help a compression-style stream: on {c_on:.3} vs off {c_off:.3}"
    );
}

#[test]
fn load_pipes_relieve_ls_pipe_pressure() {
    let (w, r) = warmed("P11", 16_000, 10_000);
    let no_lp = MicroArch {
        ls_pipes: 1,
        load_pipes: 0,
        ..MicroArch::big_core()
    };
    let with_lp = MicroArch {
        ls_pipes: 1,
        load_pipes: 8,
        ..MicroArch::big_core()
    };
    let a = cpi(&w, &r, &no_lp);
    let b = cpi(&w, &r, &with_lp);
    assert!(
        b < a,
        "dedicated load pipes must relieve pressure: {b:.3} vs {a:.3}"
    );
}
