//! End-to-end integration tests: the full generate → analyze → simulate →
//! train → predict pipeline at a tiny scale.

use concorde_suite::prelude::*;

fn tiny_profile() -> ReproProfile {
    ReproProfile::quick()
}

#[test]
fn end_to_end_pipeline_beats_naive_predictor() {
    let profile = tiny_profile();
    let cfg = DatasetConfig {
        profile: profile.clone(),
        n: 120,
        seed: 100,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 16, 20, 24]), // O1, O2, S2, S6
        threads: 0,
    };
    let data = generate_dataset(&cfg);
    let (train, test) = data.split_at(96);
    let (model, stats) = train_and_evaluate(train, test, &profile, &TrainOptions::default());

    // Naive: predict the train-set mean CPI everywhere.
    let mean_cpi = train.iter().map(|s| s.cpi).sum::<f64>() / train.len() as f64;
    let naive_pairs: Vec<(f64, f64)> = test.iter().map(|s| (mean_cpi, s.cpi)).collect();
    let naive = ErrorStats::from_pairs(&naive_pairs);
    // At this tiny scale the tail is noisy; compare medians (robust) and
    // require the mean not to be catastrophically worse.
    assert!(
        stats.p50 < naive.p50,
        "Concorde median ({:.3}) must beat mean-prediction median ({:.3})",
        stats.p50,
        naive.p50
    );
    assert!(
        stats.mean < naive.mean * 3.0,
        "mean {:.3} vs naive {:.3}",
        stats.mean,
        naive.mean
    );

    // And its predictions must be usable via the FeatureStore path too.
    let suite = suite();
    let s0 = &test[0];
    let spec = &suite[s0.workload as usize];
    let warm_start = s0.region.start.saturating_sub(profile.warmup_len as u64);
    let warm_len = (s0.region.start - warm_start) as usize;
    let full = generate_region(
        spec,
        s0.region.trace_idx,
        warm_start,
        warm_len + profile.region_len,
    );
    let (w, r) = full.instrs.split_at(warm_len);
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&s0.arch), &profile);
    let via_store = model.predict(&store, &s0.arch);
    let via_features = model.predict_features(&s0.features);
    assert!(
        (via_store - via_features).abs() / via_features < 1e-6,
        "store path {via_store} must equal stored-features path {via_features}"
    );
}

#[test]
fn model_artifacts_roundtrip_through_disk() {
    let profile = tiny_profile();
    let cfg = DatasetConfig {
        profile: profile.clone(),
        n: 32,
        seed: 101,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 16]),
        threads: 0,
    };
    let data = generate_dataset(&cfg);
    let model = train_model(
        &data,
        &profile,
        &TrainOptions {
            epochs: Some(3),
            ..TrainOptions::default()
        },
    );
    let path = std::env::temp_dir().join("concorde_integration_model.json");
    model.save(&path).unwrap();
    let loaded = ConcordePredictor::load(&path).unwrap();
    for s in &data {
        let a = model.predict_features(&s.features);
        let b = loaded.predict_features(&s.features);
        assert!((a - b).abs() < 1e-9);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn dataset_regeneration_is_bit_identical() {
    let profile = tiny_profile();
    let cfg = DatasetConfig {
        profile,
        n: 10,
        seed: 202,
        arch: ArchSampling::Random,
        workloads: Some(vec![3, 20]),
        threads: 0,
    };
    let a = generate_dataset(&cfg);
    let b = generate_dataset(&cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cpi.to_bits(), y.cpi.to_bits());
        assert_eq!(x.features, y.features);
    }
}

#[test]
fn long_program_estimator_runs_end_to_end() {
    let profile = tiny_profile();
    let arch = MicroArch::arm_n1();
    let cfg = DatasetConfig {
        profile: profile.clone(),
        n: 48,
        seed: 300,
        arch: ArchSampling::Fixed(arch),
        workloads: Some(vec![15, 16]),
        threads: 0,
    };
    let data = generate_dataset(&cfg);
    let model = train_model(
        &data,
        &profile,
        &TrainOptions {
            epochs: Some(10),
            ..TrainOptions::default()
        },
    );
    let spec = by_id("O2").unwrap();
    let res = long_program_experiment(&spec, &arch, &model, &profile, 60_000, &[2, 6], 1);
    assert!(res.true_cpi > 0.1 && res.true_cpi < 50.0);
    assert_eq!(res.estimates.len(), 2);
    for (_, est, err) in &res.estimates {
        assert!(est.is_finite() && *est > 0.0);
        assert!(err.is_finite());
    }
}
