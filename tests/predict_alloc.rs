//! Proves single-sample `Mlp::predict` performs **zero heap allocations**
//! once its thread-local scratch is warm: the seed's per-layer `Vec`
//! allocations were replaced by routing through `predict_batch_into` with
//! n = 1 over reused scratch. Own test binary so no other test's
//! allocations race the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use concorde_suite::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

#[test]
fn predict_allocates_nothing_when_warm() {
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    // A few representative shapes, largest first so the thread-local scratch
    // reaches steady-state capacity immediately.
    let mlps = [
        Mlp::new(&[96, 64, 32, 1], &mut rng),
        Mlp::new(&[40, 24, 1], &mut rng),
        Mlp::new(&[7, 5, 1], &mut rng),
    ];
    for mlp in &mlps {
        let din = mlp.input_dim();
        let x: Vec<f32> = (0..din).map(|i| ((i as f32) * 0.61).sin() * 3.0).collect();
        // Warm the thread-local scratch for this shape.
        let cold = mlp.predict(&x);
        let before = ALLOCS.load(Ordering::SeqCst);
        let mut warm = 0.0;
        for _ in 0..32 {
            warm = mlp.predict(&x);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "predict allocated {} times for dims {din}→1",
            after - before
        );
        assert_eq!(cold.to_bits(), warm.to_bits());
    }
}
