//! Proves single-sample `Mlp::predict` performs **zero heap allocations**
//! once its thread-local scratch is warm: the seed's per-layer `Vec`
//! allocations were replaced by routing through `predict_batch_into` with
//! n = 1 over reused scratch. Counting is scoped to the test's own thread —
//! the libtest harness thread allocates concurrently (output capture,
//! timers), and a process-wide counter makes the assertion flaky.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use concorde_suite::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static COUNT_HERE: Cell<bool> = const { Cell::new(false) };
}

/// True only on a thread that opted into counting. `try_with` because the
/// allocator can be re-entered during TLS teardown, when the key is gone.
fn counting() -> bool {
    COUNT_HERE.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

#[test]
fn predict_allocates_nothing_when_warm() {
    COUNT_HERE.with(|f| f.set(true));
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    // A few representative shapes, largest first so the thread-local scratch
    // reaches steady-state capacity immediately.
    let mlps = [
        Mlp::new(&[96, 64, 32, 1], &mut rng),
        Mlp::new(&[40, 24, 1], &mut rng),
        Mlp::new(&[7, 5, 1], &mut rng),
    ];
    for mlp in &mlps {
        let din = mlp.input_dim();
        let x: Vec<f32> = (0..din).map(|i| ((i as f32) * 0.61).sin() * 3.0).collect();
        // Warm the thread-local scratch for this shape.
        let cold = mlp.predict(&x);
        let before = ALLOCS.load(Ordering::SeqCst);
        let mut warm = 0.0;
        for _ in 0..32 {
            warm = mlp.predict(&x);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "predict allocated {} times for dims {din}→1",
            after - before
        );
        assert_eq!(cold.to_bits(), warm.to_bits());
    }
}
