//! Property-based tests over the core invariants (proptest).

use concorde_suite::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn arch_strategy() -> impl Strategy<Value = MicroArch> {
    (any::<u64>()).prop_map(|seed| {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        MicroArch::sample(&mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Simulated CPI is finite, positive, and respects the commit-width floor
    /// for any sampled microarchitecture.
    #[test]
    fn simulator_cpi_is_sane(arch in arch_strategy(), wl in 0usize..29, seed in 0u32..1000) {
        let suite = suite();
        let spec = &suite[wl];
        let t = generate_region(spec, seed % spec.n_traces, 0, 2_000);
        let r = simulate(&t.instrs, &arch, SimOptions::default());
        prop_assert!(r.cpi().is_finite());
        prop_assert!(r.cpi() >= 1.0 / f64::from(arch.commit_width) - 1e-9);
        prop_assert!(r.cpi() < 1000.0, "cpi {} for {arch:?}", r.cpi());
    }

    /// The ROB analytical model's throughput is monotone in ROB size.
    #[test]
    fn rob_model_monotone(wl in 0usize..29, seed in 0u32..500) {
        let suite = suite();
        let spec = &suite[wl];
        let t = generate_region(spec, seed % spec.n_traces, u64::from(seed) * 4096, 3_000);
        let info = analyze_static(&t.instrs);
        let data = analyze_data(&[], &t.instrs, MemConfig::default());
        let mut prev = 0.0;
        for rob in [1u32, 8, 64, 512] {
            let thr = rob_model(&info, &data, rob).overall_throughput();
            prop_assert!(thr >= prev - 1e-9, "ROB {rob}: {thr} < {prev}");
            prev = thr;
        }
    }

    /// Queue-model marks are monotone and the throughput respects queue size.
    #[test]
    fn queue_model_monotone(wl in 0usize..29) {
        let suite = suite();
        let t = generate_region(&suite[wl], 0, 0, 3_000);
        let info = analyze_static(&t.instrs);
        let data = analyze_data(&[], &t.instrs, MemConfig::default());
        let small = queue_model(&info, &data, 2, QueueKind::Load);
        let big = queue_model(&info, &data, 64, QueueKind::Load);
        prop_assert!(small.last().unwrap() >= big.last().unwrap());
        for w in small.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Percentile encodings are sorted within each half and bounded by the
    /// sample extrema.
    #[test]
    fn encoding_sorted_and_bounded(samples in proptest::collection::vec(0.0f64..100.0, 4..200), levels in 2usize..24) {
        let enc = Encoding { levels };
        let v = enc.encode(&samples);
        prop_assert_eq!(v.len(), 2 * levels + 1);
        let lo = samples.iter().cloned().fold(f64::MAX, f64::min) as f32;
        let hi = samples.iter().cloned().fold(f64::MIN, f64::max) as f32;
        for half in [&v[..levels], &v[levels..2 * levels]] {
            for w in half.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-6);
            }
            for x in half {
                prop_assert!(*x >= lo - 1e-4 && *x <= hi + 1e-4);
            }
        }
    }

    /// Shapley efficiency holds for arbitrary synthetic models, and MC
    /// attribution telescopes exactly.
    #[test]
    fn shapley_efficiency(coeffs in proptest::collection::vec(-1.0f64..1.0, 4), perms in 1usize..20, seed in any::<u64>()) {
        let base = MicroArch::big_core();
        let target = MicroArch::arm_n1();
        let groups: Vec<ParamGroup> = default_groups().into_iter().take(4).collect();
        let f = move |a: &MicroArch| {
            1.0 + coeffs[0] * f64::from(a.rob_size) / 1024.0
                + coeffs[1] * f64::from(a.lq_size) / 256.0
                + coeffs[2] * f64::from(a.mem.l1d_kb) / 256.0
                + coeffs[3] * f64::from(a.mem.l2_kb) / 4096.0
                + coeffs[0] * coeffs[1] * f64::from(a.rob_size * a.lq_size) / (1024.0 * 256.0)
        };
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let s = shapley_mc(f, &base, &target, &groups, perms, &mut rng);
        let total: f64 = s.values.iter().sum();
        prop_assert!((total - (s.target_value - s.base_value)).abs() < 1e-9);
    }

    /// Region overlap is symmetric, bounded, and zero across traces.
    #[test]
    fn region_overlap_properties(s1 in 0u64..64, s2 in 0u64..64, len in 1u32..5000, t1 in 0u32..3, t2 in 0u32..3) {
        let a = RegionRef { workload: 1, trace_idx: t1, start: s1 * 1024, len };
        let b = RegionRef { workload: 1, trace_idx: t2, start: s2 * 1024, len };
        prop_assert_eq!(a.overlap(&b), b.overlap(&a));
        prop_assert!(a.overlap(&b) <= u64::from(len));
        if t1 != t2 {
            prop_assert_eq!(a.overlap(&b), 0);
        } else {
            prop_assert_eq!(a.overlap(&a), u64::from(len));
        }
    }

    /// Trace generation is deterministic and the instruction mix is stable
    /// under re-generation of overlapping windows.
    #[test]
    fn generation_deterministic(wl in 0usize..29, start_seg in 0u64..16) {
        let suite = suite();
        let spec = &suite[wl];
        let start = start_seg * concorde_suite::trace::SEGMENT_LEN;
        let a = generate_region(spec, 0, start, 1500);
        let b = generate_region(spec, 0, start, 1500);
        prop_assert_eq!(a.instrs, b.instrs);
    }

    /// Batched MLP inference is bitwise identical to the per-sample path for
    /// random shapes, batch sizes, and inputs (the serving engine's core
    /// correctness contract).
    #[test]
    fn mlp_batch_matches_single_bitwise(seed in any::<u64>(), n in 1usize..24, din in 1usize..16, dh in 2usize..12) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&[din, dh, 1], &mut rng);
        let mut scratch = MlpScratch::default();
        let xs: Vec<f32> = (0..n * din).map(|i| ((i as f32) * 0.37 + seed as f32 % 7.0).sin() * 4.0).collect();
        let mut batch = vec![0.0f32; n];
        mlp.predict_batch_into(&xs, &mut batch, &mut scratch);
        for s in 0..n {
            let single = mlp.predict(&xs[s * din..(s + 1) * din]);
            prop_assert_eq!(single.to_bits(), batch[s].to_bits(), "row {} diverged", s);
        }
    }

    /// Bigger L1d never increases the in-order miss count.
    #[test]
    fn cache_miss_monotone(wl in 0usize..29) {
        let suite = suite();
        let t = generate_region(&suite[wl], 0, 0, 6_000);
        let mut prev_hits = 0u64;
        for kb in [16u32, 64, 256] {
            let cfg = MemConfig { l1d_kb: kb, ..MemConfig::default() };
            let res = simulate_inorder(&t.instrs, cfg);
            prop_assert!(res.stats.d_l1 >= prev_hits, "L1d {kb}kB lost hits");
            prev_hits = res.stats.d_l1;
        }
    }
}
