//! Property-based tests over the core invariants (proptest).

use concorde_suite::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn arch_strategy() -> impl Strategy<Value = MicroArch> {
    (any::<u64>()).prop_map(|seed| {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        MicroArch::sample(&mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Simulated CPI is finite, positive, and respects the commit-width floor
    /// for any sampled microarchitecture.
    #[test]
    fn simulator_cpi_is_sane(arch in arch_strategy(), wl in 0usize..29, seed in 0u32..1000) {
        let suite = suite();
        let spec = &suite[wl];
        let t = generate_region(spec, seed % spec.n_traces, 0, 2_000);
        let r = simulate(&t.instrs, &arch, SimOptions::default());
        prop_assert!(r.cpi().is_finite());
        prop_assert!(r.cpi() >= 1.0 / f64::from(arch.commit_width) - 1e-9);
        prop_assert!(r.cpi() < 1000.0, "cpi {} for {arch:?}", r.cpi());
    }

    /// The ROB analytical model's throughput is monotone in ROB size.
    #[test]
    fn rob_model_monotone(wl in 0usize..29, seed in 0u32..500) {
        let suite = suite();
        let spec = &suite[wl];
        let t = generate_region(spec, seed % spec.n_traces, u64::from(seed) * 4096, 3_000);
        let info = analyze_static(&t.instrs);
        let data = analyze_data(&[], &t.instrs, MemConfig::default());
        let mut prev = 0.0;
        for rob in [1u32, 8, 64, 512] {
            let thr = rob_model(&info, &data, rob).overall_throughput();
            prop_assert!(thr >= prev - 1e-9, "ROB {rob}: {thr} < {prev}");
            prev = thr;
        }
    }

    /// Queue-model marks are monotone and the throughput respects queue size.
    #[test]
    fn queue_model_monotone(wl in 0usize..29) {
        let suite = suite();
        let t = generate_region(&suite[wl], 0, 0, 3_000);
        let info = analyze_static(&t.instrs);
        let data = analyze_data(&[], &t.instrs, MemConfig::default());
        let small = queue_model(&info, &data, 2, QueueKind::Load);
        let big = queue_model(&info, &data, 64, QueueKind::Load);
        prop_assert!(small.last().unwrap() >= big.last().unwrap());
        for w in small.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Percentile encodings are sorted within each half and bounded by the
    /// sample extrema.
    #[test]
    fn encoding_sorted_and_bounded(samples in proptest::collection::vec(0.0f64..100.0, 4..200), levels in 2usize..24) {
        let enc = Encoding { levels };
        let v = enc.encode(&samples);
        prop_assert_eq!(v.len(), 2 * levels + 1);
        let lo = samples.iter().cloned().fold(f64::MAX, f64::min) as f32;
        let hi = samples.iter().cloned().fold(f64::MIN, f64::max) as f32;
        for half in [&v[..levels], &v[levels..2 * levels]] {
            for w in half.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-6);
            }
            for x in half {
                prop_assert!(*x >= lo - 1e-4 && *x <= hi + 1e-4);
            }
        }
    }

    /// Shapley efficiency holds for arbitrary synthetic models, and MC
    /// attribution telescopes exactly.
    #[test]
    fn shapley_efficiency(coeffs in proptest::collection::vec(-1.0f64..1.0, 4), perms in 1usize..20, seed in any::<u64>()) {
        let base = MicroArch::big_core();
        let target = MicroArch::arm_n1();
        let groups: Vec<ParamGroup> = default_groups().into_iter().take(4).collect();
        let f = move |a: &MicroArch| {
            1.0 + coeffs[0] * f64::from(a.rob_size) / 1024.0
                + coeffs[1] * f64::from(a.lq_size) / 256.0
                + coeffs[2] * f64::from(a.mem.l1d_kb) / 256.0
                + coeffs[3] * f64::from(a.mem.l2_kb) / 4096.0
                + coeffs[0] * coeffs[1] * f64::from(a.rob_size * a.lq_size) / (1024.0 * 256.0)
        };
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let s = shapley_mc(f, &base, &target, &groups, perms, &mut rng);
        let total: f64 = s.values.iter().sum();
        prop_assert!((total - (s.target_value - s.base_value)).abs() < 1e-9);
    }

    /// Region overlap is symmetric, bounded, and zero across traces.
    #[test]
    fn region_overlap_properties(s1 in 0u64..64, s2 in 0u64..64, len in 1u32..5000, t1 in 0u32..3, t2 in 0u32..3) {
        let a = RegionRef { workload: 1, trace_idx: t1, start: s1 * 1024, len };
        let b = RegionRef { workload: 1, trace_idx: t2, start: s2 * 1024, len };
        prop_assert_eq!(a.overlap(&b), b.overlap(&a));
        prop_assert!(a.overlap(&b) <= u64::from(len));
        if t1 != t2 {
            prop_assert_eq!(a.overlap(&b), 0);
        } else {
            prop_assert_eq!(a.overlap(&a), u64::from(len));
        }
    }

    /// Trace generation is deterministic and the instruction mix is stable
    /// under re-generation of overlapping windows.
    #[test]
    fn generation_deterministic(wl in 0usize..29, start_seg in 0u64..16) {
        let suite = suite();
        let spec = &suite[wl];
        let start = start_seg * concorde_suite::trace::SEGMENT_LEN;
        let a = generate_region(spec, 0, start, 1500);
        let b = generate_region(spec, 0, start, 1500);
        prop_assert_eq!(a.instrs, b.instrs);
    }

    /// Batched MLP inference is bitwise identical to the per-sample path for
    /// random shapes, batch sizes, and inputs (the serving engine's core
    /// correctness contract).
    #[test]
    fn mlp_batch_matches_single_bitwise(seed in any::<u64>(), n in 1usize..24, din in 1usize..16, dh in 2usize..12) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&[din, dh, 1], &mut rng);
        let mut scratch = MlpScratch::default();
        let xs: Vec<f32> = (0..n * din).map(|i| ((i as f32) * 0.37 + seed as f32 % 7.0).sin() * 4.0).collect();
        let mut batch = vec![0.0f32; n];
        mlp.predict_batch_into(&xs, &mut batch, &mut scratch);
        for s in 0..n {
            let single = mlp.predict(&xs[s * din..(s + 1) * din]);
            prop_assert_eq!(single.to_bits(), batch[s].to_bits(), "row {} diverged", s);
        }
    }

    /// Bigger L1d never increases the in-order miss count.
    #[test]
    fn cache_miss_monotone(wl in 0usize..29) {
        let suite = suite();
        let t = generate_region(&suite[wl], 0, 0, 6_000);
        let mut prev_hits = 0u64;
        for kb in [16u32, 64, 256] {
            let cfg = MemConfig { l1d_kb: kb, ..MemConfig::default() };
            let res = simulate_inorder(&t.instrs, cfg);
            prop_assert!(res.stats.d_l1 >= prev_hits, "L1d {kb}kB lost hits");
            prev_hits = res.stats.d_l1;
        }
    }

    /// Arena-indexed quantized lookups agree with the seed's value-keyed
    /// HashMap semantics: assembling features for an off-grid design is
    /// bitwise identical to assembling for the design with every parameter
    /// snapped to its nearest grid value by the seed's `nearest` functions.
    #[test]
    fn quantized_lookup_matches_value_keyed_reference(
        rob in 1u32..2048,
        lq in 1u32..512,
        sq in 1u32..512,
        alu in 1u32..12,
        fp in 1u32..12,
        ls in 1u32..12,
        lsp in 1u32..12,
        lp in 0u32..12,
        fills in 1u32..64,
        buffers in 1u32..12,
    ) {
        let (store, sweep) = quantized_fixture();
        let mut arch = MicroArch::arm_n1();
        arch.rob_size = rob;
        arch.lq_size = lq;
        arch.sq_size = sq;
        arch.alu_width = alu;
        arch.fp_width = fp;
        arch.ls_width = ls;
        arch.ls_pipes = lsp;
        arch.load_pipes = lp;
        arch.max_icache_fills = fills;
        arch.fetch_buffers = buffers;

        // Seed-reference quantization (ratio distance for sizes, L1 distance
        // for pipe pairs), applied to values — the old HashMap keys.
        let mut rob_grid: Vec<u32> = sweep.rob.iter().copied().chain(ROB_SWEEP).collect();
        rob_grid.sort_unstable();
        rob_grid.dedup();
        let mut snapped = arch;
        snapped.rob_size = seed_nearest(&rob_grid, arch.rob_size);
        snapped.lq_size = seed_nearest(&sweep.lq, arch.lq_size);
        snapped.sq_size = seed_nearest(&sweep.sq, arch.sq_size);
        snapped.alu_width = seed_nearest(&sweep.alu, arch.alu_width);
        snapped.fp_width = seed_nearest(&sweep.fp, arch.fp_width);
        snapped.ls_width = seed_nearest(&sweep.ls, arch.ls_width);
        let (slsp, slp) = seed_nearest_pair(&sweep.pipes, (arch.ls_pipes, arch.load_pipes));
        snapped.ls_pipes = slsp;
        snapped.load_pipes = slp;
        snapped.max_icache_fills = seed_nearest(&sweep.fills, arch.max_icache_fills);
        snapped.fetch_buffers = seed_nearest(&sweep.buffers, arch.fetch_buffers);

        for v in [FeatureVariant::Base, FeatureVariant::Full] {
            let raw = store.features(&arch, v);
            let snap = store.features(&snapped, v);
            // Everything except the parameter tail must be identical (the
            // tail encodes the *requested* values, not the snapped ones).
            let dims = raw.len() - MicroArch::ENCODED_DIM;
            for i in 0..dims {
                prop_assert_eq!(raw[i].to_bits(), snap[i].to_bits(), "dim {} of {:?}", i, v);
            }
        }
        for res in Resource::ALL {
            let a = store.raw_series(res, &arch);
            let b = store.raw_series(res, &snapped);
            prop_assert_eq!(a, b, "{:?}", res);
        }
    }
}

/// Shared quantized-sweep store for the lookup property (built once).
fn quantized_fixture() -> (&'static FeatureStore, &'static SweepConfig) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(FeatureStore, SweepConfig)> = OnceLock::new();
    let (s, c) = FIXTURE.get_or_init(|| {
        let profile = ReproProfile::quick();
        let spec = by_id("S5").unwrap();
        let full = generate_region(&spec, 0, 0, 2 * 4_096);
        let (w, r) = full.instrs.split_at(4_096);
        // A small multi-point sweep: pow-2 grids on every axis, one memory
        // configuration (the property leaves `mem` on-grid).
        let arch = MicroArch::arm_n1();
        let mut sweep = SweepConfig::for_arch(&arch);
        sweep.rob = vec![32, 128, 512];
        sweep.lq = vec![8, 32, 128];
        sweep.sq = vec![8, 32, 128];
        sweep.alu = vec![1, 2, 4, 8];
        sweep.fp = vec![1, 2, 4, 8];
        sweep.ls = vec![1, 2, 4, 8];
        sweep.pipes = vec![(1, 0), (2, 2), (4, 4), (8, 8)];
        sweep.fills = vec![1, 4, 16];
        sweep.buffers = vec![2, 4, 8];
        let store = FeatureStore::precompute(w, r, &sweep, &ReproProfile { ..profile });
        (store, sweep)
    });
    (s, c)
}

/// The seed implementation's ratio-distance nearest-value selection.
fn seed_nearest(grid: &[u32], v: u32) -> u32 {
    *grid
        .iter()
        .min_by_key(|&&g| {
            let (a, b) = (g.max(1) as u64, v.max(1) as u64);
            let (hi, lo) = if a > b { (a, b) } else { (b, a) };
            (hi * 1024 / lo, hi)
        })
        .expect("grid must be non-empty")
}

/// The seed implementation's L1-distance nearest pipe pair.
fn seed_nearest_pair(grid: &[(u32, u32)], v: (u32, u32)) -> (u32, u32) {
    *grid
        .iter()
        .min_by_key(|&&(a, b)| {
            let d1 = (i64::from(a) - i64::from(v.0)).abs();
            let d2 = (i64::from(b) - i64::from(v.1)).abs();
            (d1 + d2, a, b)
        })
        .expect("pipes grid must be non-empty")
}

// ---------------------------------------------------------------------------
// Sharded, byte-budgeted store cache (serving).
// ---------------------------------------------------------------------------

/// One real (tiny) feature store shared by every cache property case; the
/// cache only reads `approx_bytes`, so one store under many keys exercises
/// the full admission/eviction space.
fn cache_test_store() -> std::sync::Arc<FeatureStore> {
    use std::sync::{Arc, OnceLock};
    static STORE: OnceLock<Arc<FeatureStore>> = OnceLock::new();
    Arc::clone(STORE.get_or_init(|| {
        let profile = ReproProfile::quick();
        let arch = MicroArch::arm_n1();
        let full = generate_region(&by_id("S5").unwrap(), 0, 0, 2048).instrs;
        let (w, r) = full.split_at(1024);
        Arc::new(FeatureStore::precompute(
            w,
            r,
            &SweepConfig::for_arch(&arch),
            &profile,
        ))
    }))
}

fn cache_key(start: u64) -> FeatureKey {
    FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start,
        region_len: 2048,
        sweep_hash: 7,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The sharded byte-budget cache behaves exactly like a reference
    /// per-shard LRU: same membership, same bytes, same eviction victims in
    /// the same order, under arbitrary interleavings of inserts and gets.
    #[test]
    fn sharded_cache_matches_reference_lru(
        shards in 1usize..4,
        capacity in 1usize..5,
        ops in proptest::collection::vec((0u64..24, any::<bool>()), 1..60),
    ) {
        let store = cache_test_store();
        let b = store.approx_bytes();
        // Per-shard budget fits exactly `capacity` stores (plus half a store
        // of slack so the boundary is unambiguous).
        let shard_budget = capacity * b + b / 2;
        let cache = ShardedStoreCache::new(shards, shards * shard_budget);
        prop_assert_eq!(cache.shard_budget(), shard_budget);

        // Reference model: per shard, keys in MRU→LRU order.
        let mut model: Vec<Vec<FeatureKey>> = vec![Vec::new(); shards];
        let mut expected_evictions = 0u64;
        for (start, is_insert) in ops {
            let k = cache_key(start);
            let s = cache.shard_of(&k);
            let m = &mut model[s];
            if is_insert {
                let evicted = cache.insert(k.clone(), std::sync::Arc::clone(&store));
                if let Some(pos) = m.iter().position(|x| *x == k) {
                    m.remove(pos);
                }
                m.insert(0, k);
                let mut expect = Vec::new();
                while m.len() > capacity && m.len() > 1 {
                    expect.push(m.pop().unwrap());
                }
                expected_evictions += expect.len() as u64;
                prop_assert_eq!(evicted, expect, "eviction victims/order diverged");
            } else {
                let got = cache.get(&k);
                match m.iter().position(|x| *x == k) {
                    Some(pos) => {
                        prop_assert!(got.is_some(), "model says resident, cache missed");
                        let k = m.remove(pos);
                        m.insert(0, k);
                    }
                    None => prop_assert!(got.is_none(), "model says absent, cache hit"),
                }
            }
        }
        let resident: usize = model.iter().map(Vec::len).sum();
        prop_assert_eq!(cache.len(), resident);
        prop_assert_eq!(cache.bytes(), resident * b);
        let stats = cache.stats();
        prop_assert_eq!(stats.evictions, expected_evictions);
        prop_assert_eq!(stats.stores, resident);
        // Every key the model holds must still be resident (get is
        // order-mutating but membership-preserving, so this is safe).
        for m in &model {
            for k in m {
                prop_assert!(cache.get(k).is_some(), "resident key {:?} lost", k);
            }
        }
    }
}
