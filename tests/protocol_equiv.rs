//! Property tests pinning the wire fast path to the slow path it replaces.
//!
//! 1. **Decoder equivalence** — for any line, if the single-pass borrowed
//!    decoder ([`decode_request_line`]) accepts it, the legacy
//!    `serde_json::Value` route must parse it to field-identical requests;
//!    a [`FastMiss::Cmd`] must only ever fire on a top-level object that
//!    really carries a `"cmd"` key; and on canonical request lines (what
//!    [`TcpClient`](concorde_suite::serve::TcpClient) itself emits) the
//!    fast path must actually engage — the property is not vacuous.
//! 2. **Encoder equivalence** — [`PredictResponse::encode_json_into`] must
//!    be byte-identical to `serde_json::to_string` across the response
//!    space (float shapes, escapes, every optional-field combination).

use concorde_suite::serve::protocol::{decode_request_line, DecodedShape, FastMiss};
use concorde_suite::serve::{PredictRequest, PredictResponse};
use proptest::prelude::*;

/// SplitMix64 — the same deterministic generator the proptest shim uses,
/// re-instantiated per case from the drawn seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// A workload value exercising inline and heap `KeyStr`s, escapes, unknown
/// ids, and non-ASCII.
fn workload(rng: &mut Rng) -> &'static str {
    const CHOICES: &[&str] = &[
        "S5",
        "P1",
        "ZZZ-unknown",
        "a-workload-id-well-beyond-the-inline-cap-of-keystr",
        "quote\\\"inside",
        "esc\\n\\t\\\\done",
        "uni\\u00e9\\u0041",
        "astral\\ud83d\\ude00",
        "",
    ];
    CHOICES[rng.below(CHOICES.len() as u64) as usize]
}

/// Emits one request object. `canonical` restricts to the clean shapes the
/// fast decoder must accept; otherwise the emitter may add unknown keys,
/// duplicate keys, float-typed ints, and whitespace.
fn emit_request(rng: &mut Rng, canonical: bool, out: &mut String) {
    let ws: &[&str] = if canonical {
        &[""]
    } else {
        &["", " ", "\t", "  "]
    };
    let mut fields: Vec<String> = Vec::new();
    fields.push(format!("\"id\":{}", rng.below(1 << 40)));
    let w = workload(rng);
    fields.push(format!("\"workload\":\"{w}\""));
    if rng.chance(40) {
        fields.push(format!("\"trace\":{}", rng.below(8)));
    }
    if rng.chance(40) {
        fields.push(format!("\"start\":{}", rng.below(1 << 20)));
    }
    if rng.chance(30) {
        fields.push(format!("\"len\":{}", rng.below(1 << 14)));
    }
    if rng.chance(60) {
        let mut parts: Vec<String> = Vec::new();
        if rng.chance(50) {
            let base = ["n1", "big", "nope"][rng.below(3) as usize];
            parts.push(format!("\"base\":\"{base}\""));
        }
        for key in ["rob", "lq", "sq", "alu", "fp", "ls", "fetch", "l1d", "l2"] {
            if rng.chance(25) {
                parts.push(format!("\"{key}\":{}", 1 + rng.below(512)));
            }
        }
        fields.push(format!("\"arch\":{{{}}}", parts.join(",")));
    }
    if rng.chance(25) {
        fields.push(format!("\"deadline_ms\":{}", rng.below(1000)));
    }
    if rng.chance(25) {
        let class = ["interactive", "batch"][rng.below(2) as usize];
        fields.push(format!("\"class\":\"{class}\""));
    }
    if rng.chance(25) {
        let b = if rng.chance(50) { "true" } else { "false" };
        fields.push(format!("\"notify\":{b}"));
    }
    if rng.chance(20) {
        fields.push(format!("\"schema_version\":{}", rng.below(5)));
    }
    if !canonical {
        if rng.chance(25) {
            fields.push("\"unknown_key\":[1,{\"x\":null}]".to_string());
        }
        if rng.chance(20) {
            // Duplicate key: last-wins in both decoders.
            fields.push(format!("\"id\":{}", rng.below(100)));
        }
        if rng.chance(15) {
            fields.push(format!("\"id\":{}.0", rng.below(100)));
        }
        if rng.chance(10) {
            fields.push("\"deadline_ms\":null".to_string());
        }
    }
    out.push('{');
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(ws[rng.below(ws.len() as u64) as usize]);
        out.push_str(f);
        out.push_str(ws[rng.below(ws.len() as u64) as usize]);
    }
    out.push('}');
}

/// Emits one full line plus whether it is a canonical request line (on
/// which the fast path must engage).
fn emit_line(rng: &mut Rng) -> (String, bool) {
    let mut line = String::new();
    match rng.below(10) {
        // Canonical single / batch: the fast path must take these.
        0..=2 => {
            emit_request(rng, true, &mut line);
            (line, true)
        }
        3 | 4 => {
            line.push('[');
            for i in 0..rng.below(5) {
                if i > 0 {
                    line.push(',');
                }
                emit_request(rng, true, &mut line);
            }
            line.push(']');
            (line, true)
        }
        // Messy but valid-ish single / batch.
        5 | 6 => {
            emit_request(rng, false, &mut line);
            (line, false)
        }
        7 => {
            line.push('[');
            for i in 0..rng.below(4) {
                if i > 0 {
                    line.push(',');
                }
                emit_request(rng, false, &mut line);
            }
            line.push(']');
            (line, false)
        }
        // Control objects, including cmd alongside request fields.
        8 => {
            let cmd = match rng.below(4) {
                0 => r#"{"cmd":"ping"}"#.to_string(),
                1 => r#"{"cmd":"metrics","format":"prometheus"}"#.to_string(),
                2 => r#"{"workload":"S5","cmd":"stats","id":4}"#.to_string(),
                _ => r#"{"cmd":17}"#.to_string(),
            };
            (cmd, false)
        }
        // Malformed: truncations, garbage, non-container lines.
        _ => {
            match rng.below(3) {
                0 => {
                    emit_request(rng, true, &mut line);
                    let cut = 1 + rng.below(line.len().max(2) as u64 - 1) as usize;
                    line.truncate(cut);
                }
                1 => line.push_str(["42", "\"str\"", "true", "null", "]"][rng.below(5) as usize]),
                _ => {
                    emit_request(rng, true, &mut line);
                    line.push_str("trailing");
                }
            }
            (line, false)
        }
    }
}

/// The slow path exactly as `server.rs::handle_line` routes it: `Value`
/// parse, cmd check on top-level objects, then typed conversion.
enum Slow {
    Single(PredictRequest),
    Batch(Vec<PredictRequest>),
    Cmd,
    Reject,
}

fn slow_path(line: &str) -> Slow {
    let parsed: serde_json::Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(_) => return Slow::Reject,
    };
    match parsed {
        serde_json::Value::Array(_) => match serde_json::from_value(parsed) {
            Ok(reqs) => Slow::Batch(reqs),
            Err(_) => Slow::Reject,
        },
        serde_json::Value::Object(ref obj) if obj.contains_key("cmd") => Slow::Cmd,
        obj @ serde_json::Value::Object(_) => match serde_json::from_value(obj) {
            Ok(req) => Slow::Single(req),
            Err(_) => Slow::Reject,
        },
        _ => Slow::Reject,
    }
}

fn req_value(r: &PredictRequest) -> serde_json::Value {
    serde_json::to_value(r).expect("serialize request")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 400, ..ProptestConfig::default() })]

    #[test]
    fn fast_decoder_matches_value_path(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let (line, canonical) = emit_line(&mut rng);
        let mut fast_reqs: Vec<PredictRequest> = Vec::new();
        let fast = decode_request_line(&line, &mut fast_reqs);
        let slow = slow_path(&line);
        match fast {
            Ok(DecodedShape::Single) => {
                prop_assert_eq!(fast_reqs.len(), 1);
                match slow {
                    Slow::Single(slow_req) => {
                        prop_assert_eq!(req_value(&fast_reqs[0]), req_value(&slow_req), "line: {}", line);
                    }
                    _ => prop_assert!(false, "fast accepted single the slow path rejects: {}", line),
                }
            }
            Ok(DecodedShape::Batch) => {
                match slow {
                    Slow::Batch(slow_reqs) => {
                        prop_assert_eq!(fast_reqs.len(), slow_reqs.len(), "line: {}", line);
                        for (f, s) in fast_reqs.iter().zip(&slow_reqs) {
                            prop_assert_eq!(req_value(f), req_value(s), "line: {}", line);
                        }
                    }
                    _ => prop_assert!(false, "fast accepted batch the slow path rejects: {}", line),
                }
            }
            Err(FastMiss::Cmd) => {
                prop_assert!(matches!(slow, Slow::Cmd), "Cmd miss on a non-cmd line: {}", line);
                prop_assert!(fast_reqs.is_empty());
            }
            Err(FastMiss::Fallback) => {
                // Conservative decline is always allowed — but never on the
                // canonical lines the protocol itself emits.
                prop_assert!(!canonical, "fast path declined a canonical line: {}", line);
                prop_assert!(fast_reqs.is_empty());
            }
        }
    }

    #[test]
    fn encoder_matches_serde_to_string(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let cpi = match rng.below(5) {
            0 => None,
            1 => Some(rng.below(100) as f64), // integral → ".0" suffix path
            2 => Some(f64::from_bits(rng.next() >> 2)), // small exponent soup
            3 => Some((rng.below(1 << 30) as f64) / 997.0),
            _ => Some(-((rng.below(1000) as f64) / 7.0)),
        }
        .filter(|v| v.is_finite());
        let strings: &[Option<&str>] = &[
            None,
            Some("shed"),
            Some("schema_mismatch"),
            Some("unknown workload `Z\u{1F600}`"),
            Some("quote\" backslash\\ newline\n tab\t ctrl\u{0001} done"),
        ];
        let pick = |rng: &mut Rng| strings[rng.below(strings.len() as u64) as usize]
            .map(str::to_string);
        let resp = PredictResponse {
            id: rng.next(),
            cpi,
            error: pick(&mut rng),
            cached: rng.chance(50),
            approx: rng.chance(50),
            reason: pick(&mut rng),
            kind: [None, Some("upgrade".to_string()), Some("error".to_string())]
                [rng.below(3) as usize]
                .clone(),
            micros: rng.below(1 << 40),
        };
        let mut fast = String::new();
        resp.encode_json_into(&mut fast);
        let slow = serde_json::to_string(&resp).expect("serialize response");
        prop_assert_eq!(fast, slow);
    }
}
