//! Quantized-arena coverage: per-block dequantization error bounds
//! (proptest), end-to-end prediction drift under `f16`/`int8` vs the `f32`
//! reference, footprint shrinkage, and bit-exact artifact round-trips for
//! every encoding — including mmap-vs-owned load equivalence.

use concorde_suite::core::cache::FeatureKey;
use concorde_suite::prelude::*;

fn quick_profile() -> ReproProfile {
    // window_k 64 → 64 raw windows per series: the representative shape for
    // footprint ratios (the default profile's k=256 over 24k-instruction
    // regions yields a similar windows-per-series count).
    ReproProfile {
        window_k: 64,
        ..ReproProfile::quick()
    }
}

/// One quick two-config store (the `for_pair` sweep exercises multi-d_cfg
/// tables, including the latency arenas).
fn reference_store() -> (FeatureStore, MicroArch, MicroArch) {
    let profile = quick_profile();
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let n1 = MicroArch::arm_n1();
    let big = MicroArch::big_core();
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_pair(&big, &n1), &profile);
    (store, n1, big)
}

#[test]
fn f32_reencode_is_bitwise_identity() {
    let (store, n1, _) = reference_store();
    let same = store.reencoded(ArenaEncoding::F32);
    assert_eq!(store.to_bytes(), same.to_bytes());
    assert_eq!(
        store
            .features(&n1, FeatureVariant::Full)
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        same.features(&n1, FeatureVariant::Full)
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>()
    );
}

#[test]
fn int8_store_shrinks_approx_bytes_at_least_3x() {
    let (store, _, _) = reference_store();
    let int8 = store.reencoded(ArenaEncoding::Int8);
    let f16 = store.reencoded(ArenaEncoding::F16);
    let (b32, b16, b8) = (
        store.approx_bytes(),
        f16.approx_bytes(),
        int8.approx_bytes(),
    );
    assert!(
        b32 >= 3 * b8,
        "int8 must shrink the cache-accounted footprint ≥3×: f32 {b32} vs int8 {b8}"
    );
    assert!(
        b32 > b16 && b16 > b8,
        "footprints must order f32 > f16 > int8: {b32} / {b16} / {b8}"
    );
    // The quantized store reports its quantized encoded payload too.
    assert!(store.encoded_bytes() > int8.encoded_bytes() * 2);
    assert_eq!(store.encoded_bytes_f32(), int8.encoded_bytes_f32());
}

/// Max |a-b| over a feature vector, with the index for diagnostics.
fn max_abs_diff(a: &[f32], b: &[f32]) -> (f32, usize) {
    let mut worst = (0.0f32, 0usize);
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let d = (x - y).abs();
        if d > worst.0 {
            worst = (d, i);
        }
    }
    worst
}

#[test]
fn quantized_feature_vectors_stay_near_the_f32_reference() {
    let (store, n1, big) = reference_store();
    for arch in [n1, big] {
        let reference = store.features(&arch, FeatureVariant::Full);
        let scale = reference.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let f16 = store
            .reencoded(ArenaEncoding::F16)
            .features(&arch, FeatureVariant::Full);
        let (d16, i16) = max_abs_diff(&reference, &f16);
        assert!(
            d16 <= scale * 5e-4 + 1e-6,
            "f16 drift {d16} at dim {i16} (scale {scale})"
        );
        let int8 = store
            .reencoded(ArenaEncoding::Int8)
            .features(&arch, FeatureVariant::Full);
        let (d8, i8_) = max_abs_diff(&reference, &int8);
        // Per-block affine: error ≤ half a step of that block's range, which
        // is bounded by the global value scale / 255 / 2 (plus float slack).
        assert!(
            d8 <= scale / 255.0 * 0.51 + 1e-4,
            "int8 drift {d8} at dim {i8_} (scale {scale})"
        );
    }
}

fn tiny_model(profile: &ReproProfile) -> ConcordePredictor {
    let mut p = profile.clone();
    p.epochs = 3;
    let data = generate_dataset(&DatasetConfig {
        profile: p.clone(),
        n: 16,
        seed: 23,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    train_model(&data, &p, &TrainOptions::default())
}

/// Golden-tolerance drift pin: predictions from quantized stores must stay
/// within a small relative CPI delta of the f32 reference. The assert
/// message reports the measured delta so a regression names its magnitude.
#[test]
fn prediction_drift_f16_below_1pct_int8_below_5pct() {
    let profile = quick_profile();
    let model = tiny_model(&profile);
    let (store, n1, big) = reference_store();
    let mut off = n1;
    off.rob_size = 200;
    off.lq_size = 40;
    for arch in [n1, big, off] {
        let reference = model.predict(&store, &arch);
        assert!(reference.is_finite() && reference > 0.0);
        for (enc, tol) in [(ArenaEncoding::F16, 0.01), (ArenaEncoding::Int8, 0.05)] {
            let q = model.predict(&store.reencoded(enc), &arch);
            let delta = (q - reference).abs() / reference;
            assert!(
                delta <= tol,
                "{enc} CPI drift {:.4}% exceeds {:.1}% (f32 CPI {reference:.4} → {enc} {q:.4})",
                delta * 100.0,
                tol * 100.0
            );
        }
    }
}

#[test]
fn min_bound_survives_quantization_approximately() {
    // The analytic min-bound takes a per-window min over 9 raw series, which
    // amplifies per-series quantization error (every series' negative error
    // can win a window) — so its tolerance is looser than the ML path's,
    // which normalizes its inputs. Measured drift on this fixture: f16
    // ≈0.001%, int8 ≈8%.
    let (store, n1, _) = reference_store();
    let reference = store.min_bound_cpi(&n1);
    for (enc, tol) in [(ArenaEncoding::F16, 0.01), (ArenaEncoding::Int8, 0.15)] {
        let q = store.reencoded(enc).min_bound_cpi(&n1);
        let delta = (q - reference).abs() / reference;
        assert!(
            delta < tol,
            "{enc} min-bound drift {delta:.4} (f32 {reference} vs {q})"
        );
    }
}

#[test]
fn artifact_roundtrip_is_bitwise_for_every_encoding() {
    let (store, n1, _) = reference_store();
    for enc in ArenaEncoding::ALL {
        let encoded = store.reencoded(enc);
        let key = FeatureKey {
            workload: "S5".into(),
            trace: 0,
            start: 0,
            region_len: 4096,
            sweep_hash: 11,
        };
        let artifact = StoreArtifact::new(key.clone(), encoded.clone());
        let bytes = artifact.to_bytes();
        // Owned round-trip: container + store re-serialize to identical
        // bytes, and assembled features match bit-for-bit.
        let back = StoreArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.key, key, "{enc}");
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.store.to_bytes(), encoded.to_bytes(), "{enc}");
        assert_eq!(back.store.arena_encoding(), enc);
        let reference: Vec<u32> = encoded
            .features(&n1, FeatureVariant::Full)
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let owned: Vec<u32> = back
            .store
            .features(&n1, FeatureVariant::Full)
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(reference, owned, "{enc}: owned load diverged");

        // Mapped round-trip: identical bits without copying arena payloads.
        let path =
            std::env::temp_dir().join(format!("concorde_quant_{}_{}.cfa", enc, std::process::id()));
        artifact.save(&path).unwrap();
        let mapped = StoreArtifact::map(&path).unwrap();
        assert_eq!(mapped.key, key);
        assert_eq!(mapped.store.arena_encoding(), enc);
        if cfg!(unix) {
            assert!(mapped.store.is_mapped(), "{enc}: unix load must be mmap");
        }
        let via_map: Vec<u32> = mapped
            .store
            .features(&n1, FeatureVariant::Full)
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(reference, via_map, "{enc}: mapped load diverged");
        assert_eq!(mapped.store.to_bytes(), encoded.to_bytes(), "{enc}");
        assert_eq!(
            mapped.store.min_bound_cpi(&n1).to_bits(),
            back.store.min_bound_cpi(&n1).to_bits(),
            "{enc}: raw series must read identically mapped vs owned"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn schema_reports_the_arena_encoding() {
    let (store, _, _) = reference_store();
    assert_eq!(
        store.schema(FeatureVariant::Full).arena_encoding,
        ArenaEncoding::F32
    );
    let int8 = store.reencoded(ArenaEncoding::Int8);
    let schema = int8.schema(FeatureVariant::Full);
    assert_eq!(schema.version, SCHEMA_VERSION);
    assert_eq!(schema.arena_encoding, ArenaEncoding::Int8);
    // The annotation must survive the wire (serde round-trip).
    let json = serde_json::to_string(&schema).unwrap();
    let back: FeatureSchema = serde_json::from_str(&json).unwrap();
    assert_eq!(back.arena_encoding, ArenaEncoding::Int8);
    assert_eq!(back, schema);
}

/// Cache admission for mmap'd stores charges the **resident-page estimate**
/// (`mincore(2)`), not the full virtual payload: an owned store admits at
/// its `approx_bytes`, a mapped one at no more than that (a freshly written
/// artifact is typically fully page-cache-resident, so the bound is loose —
/// the point is the accounting path, not a page-out scenario).
#[test]
fn mapped_store_admission_counts_resident_pages() {
    let (store, _, _) = reference_store();
    let encoded = store.reencoded(ArenaEncoding::Int8);
    assert_eq!(
        encoded.admission_bytes(),
        encoded.approx_bytes(),
        "owned stores admit at their full accounted footprint"
    );
    let key = FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start: 0,
        region_len: 4096,
        sweep_hash: 13,
    };
    let path = std::env::temp_dir().join(format!("concorde_resident_{}.cfa", std::process::id()));
    StoreArtifact::new(key.clone(), encoded.clone())
        .save(&path)
        .unwrap();
    let mapped = StoreArtifact::map(&path).unwrap();
    if mapped.store.is_mapped() {
        let admission = mapped.store.admission_bytes();
        assert!(
            admission > 0 && admission <= mapped.store.approx_bytes(),
            "resident estimate {admission} must sit in (0, approx {}]",
            mapped.store.approx_bytes()
        );
        // The shared cache accounts the mapped insert at the same estimate.
        let cache = ShardedStoreCache::new(1, usize::MAX);
        let store = std::sync::Arc::new(mapped.store);
        let admission = store.admission_bytes();
        cache.insert(key, std::sync::Arc::clone(&store));
        assert_eq!(cache.stats().bytes, admission);
    }
    std::fs::remove_file(&path).ok();
}

mod block_error_bounds {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Per-block int8 bound: every dequantized element sits within half
        /// a quantization step of the block's own min/max range.
        #[test]
        fn int8_block_error_is_at_most_half_a_step(
            vals in proptest::collection::vec(-1.0e4f32..1.0e4, 1..96),
        ) {
            let stride = vals.len();
            let arena = EncArena::from_f32(&vals, stride, ArenaEncoding::Int8);
            let mut out = vec![0f32; stride];
            arena.write_entry(0, &mut out);
            let lo = vals.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let step = (f64::from(hi) - f64::from(lo)) / 255.0;
            for (o, d) in vals.iter().zip(&out) {
                let err = (f64::from(*o) - f64::from(*d)).abs();
                prop_assert!(
                    err <= step * 0.501 + 1e-3,
                    "err {err} exceeds half-step {} (block range {lo}..{hi})", step / 2.0
                );
            }
        }

        /// f16 bound: ≤ 2⁻¹¹ relative error for normal-range values (the
        /// round-to-nearest half-precision guarantee), checked per element.
        #[test]
        fn f16_block_error_is_within_half_ulp(
            vals in proptest::collection::vec(-6.0e4f32..6.0e4, 1..96),
        ) {
            let stride = vals.len();
            let arena = EncArena::from_f32(&vals, stride, ArenaEncoding::F16);
            let mut out = vec![0f32; stride];
            arena.write_entry(0, &mut out);
            for (o, d) in vals.iter().zip(&out) {
                let err = (o - d).abs();
                prop_assert!(
                    err <= o.abs() * 4.9e-4 + 6.0e-5,
                    "{o} → {d}: err {err}"
                );
            }
        }
    }
}
