//! End-to-end tests of the RISC-V ELF ingestion front end: a `riscv:<path>`
//! workload must round-trip `concorde precompute` → `serve --preload` → TCP
//! predict with bitwise-stable answers across two independent service runs,
//! and the vendored test binaries must stay in sync with their generator.

use std::time::Duration;

use concorde_suite::core::cache::{sweep_content_hash, FeatureKey};
use concorde_suite::prelude::*;
use concorde_suite::riscv;

/// Absolute path of a vendored test binary under `riscv-testdata/`.
fn vendored(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("riscv-testdata")
        .join(format!("{name}.elf"))
}

/// Small but real model + profile (trained once, deterministically).
fn tiny_service_parts() -> (ConcordePredictor, ReproProfile) {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 2;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 16,
        seed: 11,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    (model, profile)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 64,
        batch_deadline: Duration::from_millis(2),
        ..ServeConfig::default()
    }
}

/// The vendored ELFs are exactly what `gen-riscv-testdata` emits today; a
/// drifted generator must fail loudly, not silently change every
/// determinism baseline downstream.
#[test]
fn vendored_elves_match_generator_output() {
    let programs = riscv::testdata::programs();
    assert!(programs.len() >= 3, "at least three vendored workloads");
    for (name, bytes) in &programs {
        let on_disk = std::fs::read(vendored(name))
            .unwrap_or_else(|e| panic!("vendored {name}.elf unreadable: {e}"));
        assert_eq!(
            &on_disk, bytes,
            "{name}.elf drifted from testdata::programs(); rerun gen-riscv-testdata"
        );
    }
}

/// Two fully independent parse+execute passes over the same binary produce
/// bitwise-identical instruction streams, hashes, and final machine state.
#[test]
fn ingestion_is_bitwise_deterministic_per_binary() {
    for (name, _) in riscv::testdata::programs() {
        let bytes = std::fs::read(vendored(name)).expect("vendored ELF");
        let a = riscv::execute(
            &riscv::parse_elf32(&bytes).unwrap(),
            riscv::DEFAULT_MAX_INSTS,
        );
        let b = riscv::execute(
            &riscv::parse_elf32(&bytes).unwrap(),
            riscv::DEFAULT_MAX_INSTS,
        );
        assert!(a.halt.is_clean_exit(), "{name}: {:?}", a.halt);
        assert_eq!(a.trace_hash(), b.trace_hash(), "{name}: trace hash drifted");
        assert_eq!(a.trace, b.trace, "{name}: instruction stream drifted");
        assert_eq!(a.regs, b.regs, "{name}: final registers drifted");
    }
}

/// The full serving round trip: build the feature store offline exactly as
/// `concorde precompute` does, preload it, and query the riscv workload over
/// real TCP. The first query must be a cache hit, match the in-process
/// client bitwise, and repeat bitwise-identically in a second, fully
/// independent service run.
#[test]
fn riscv_workload_round_trips_precompute_preload_and_tcp_predict() {
    riscv::install();
    let elf = vendored("sum_loop");
    // A tight budget keeps the recorded trace small; the budget is part of
    // the workload id, so it is part of every cache key too.
    let id = format!("riscv:{}@65536", elf.display());

    let (model, profile) = tiny_service_parts();
    let resolved = resolve_workload(&id).expect("riscv id resolves");
    assert_eq!(resolved.spec().trace_len, 65_536, "budget-capped trace");
    let region = resolved.materialize(0, 0, profile.region_len);
    assert_eq!(region.instrs.len(), profile.region_len);

    // Offline store build, exactly as `concorde precompute` does (start 0 →
    // empty warmup, per the warm_start = start - warmup_len convention).
    let arch = MicroArch::arm_n1();
    let sweep = SweepConfig::for_arch(&arch);
    let store = FeatureStore::precompute(&[], &region.instrs, &sweep, &profile);
    let key = FeatureKey {
        workload: id.clone().into(),
        trace: 0,
        start: 0,
        region_len: profile.region_len as u32,
        sweep_hash: sweep_content_hash(&sweep),
    };
    let artifact = std::env::temp_dir().join("concorde_riscv_e2e.cfa");
    StoreArtifact::new(key, store).save(&artifact).unwrap();

    // One independent service run: preload, serve TCP, query, and return
    // the answer's bits. The service leaks because `serve_tcp` holds `&self`
    // on a detached accept thread for the remainder of the test process.
    let serve_once = |model: ConcordePredictor, profile: ReproProfile| -> u64 {
        let service = Box::leak(Box::new(PredictionService::start(
            model,
            profile,
            quick_config(),
        )));
        let loaded = service.preload_artifact(&artifact).unwrap();
        assert_eq!(loaded.workload, id.as_str());

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let svc: &PredictionService = service;
        std::thread::spawn(move || {
            let _ = svc.serve_tcp(listener);
        });

        let mut tcp = TcpClient::connect(&addr).expect("connect");
        let req = PredictRequest::new(7, &id, ArchSpec::base("n1"));
        let resp = tcp.predict(&req).expect("tcp predict");
        assert_eq!(resp.error, None, "{:?}", resp.error);
        assert!(
            resp.cached,
            "first query against the preloaded riscv region must be a cache hit"
        );
        let cpi = resp.cpi.expect("cpi on success");
        assert!(cpi.is_finite() && cpi > 0.0, "CPI {cpi} must be physical");

        // The wire answer equals the in-process client's answer bitwise.
        let direct = service
            .client()
            .predict(PredictRequest::new(8, &id, ArchSpec::base("n1")))
            .unwrap();
        assert_eq!(cpi.to_bits(), direct.cpi.unwrap().to_bits());

        let m = service.metrics();
        assert_eq!(m.cache_misses, 0, "preload must satisfy every query");
        assert!(m.cache_hits >= 1);
        cpi.to_bits()
    };

    let first = serve_once(model.clone(), profile.clone());
    let second = serve_once(model, profile);
    std::fs::remove_file(&artifact).ok();
    assert_eq!(
        first, second,
        "two independent service runs must answer bitwise-identically"
    );
}

/// On-demand resolution of client-supplied dynamic ids is opt-in and
/// confined: refused by default (suite ids and preregistered workloads
/// still serve), allowed when the operator sets a dynamic-workloads root
/// containing the ELF, budget-capped, and answering every
/// filesystem-dependent failure with one uniform message so error text
/// cannot probe the server's filesystem.
#[test]
fn wire_dynamic_resolution_is_opt_in_and_confined() {
    riscv::install();
    let (model, profile) = tiny_service_parts();
    let elf = vendored("sum_loop");
    // A budget no other test uses keeps this id genuinely unseen by the
    // process-global registry.
    let id = format!("riscv:{}@65521", elf.display());
    let predict = |client: &Client, req_id: u64, workload: &str| {
        client
            .predict(PredictRequest::new(req_id, workload, ArchSpec::base("n1")))
            .expect("submit")
    };

    // Default config (no root): the unseen id is refused with the opt-in
    // message and nothing gets registered or executed.
    let service = PredictionService::start(model.clone(), profile.clone(), quick_config());
    let client = service.client();
    let err = predict(&client, 1, &id).error.expect("must be refused");
    assert!(err.contains("dynamic resolution is disabled"), "{err}");
    assert!(
        resolve_registered(&id).is_none(),
        "a refused id must not have been resolved"
    );
    assert_eq!(predict(&client, 2, "S5").error, None, "suite ids still serve");
    drop(service);

    // Opted in with the vendored-binaries directory as root: the same id
    // now resolves and serves end to end.
    let cfg = ServeConfig {
        dynamic_root: Some(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("riscv-testdata"),
        ),
        ..quick_config()
    };
    let service = PredictionService::start(model, profile, cfg);
    let client = service.client();
    let ok = predict(&client, 3, &id);
    assert_eq!(ok.error, None, "{:?}", ok.error);
    assert!(ok.cpi.expect("cpi") > 0.0);

    // A budget beyond the server-side cap is a typed refusal (computed
    // from the id alone — safe to echo).
    let huge = format!(
        "riscv:{}@{}",
        elf.display(),
        concorde_suite::serve::MAX_WIRE_RISCV_BUDGET + 1
    );
    let err = predict(&client, 4, &huge).error.expect("capped");
    assert!(err.contains("exceeds the served maximum"), "{err}");

    // Escaping the root and probing nonexistent paths draw the same
    // uniform answer: no ENOENT-vs-exists oracle, no io::Error text.
    let escape = "riscv:/etc/hostname@65522";
    let missing = "riscv:/nonexistent/probe.elf@65522";
    let e1 = predict(&client, 5, escape).error.expect("refused");
    let e2 = predict(&client, 6, missing).error.expect("refused");
    assert!(e1.contains("not servable"), "{e1}");
    let tail = |e: &str, id: &str| e.replace(id, "<id>");
    assert_eq!(
        tail(&e1, escape),
        tail(&e2, missing),
        "in-root and out-of-root failures must be indistinguishable"
    );
}
