//! End-to-end tests of the `concorde-serve` engine: served predictions must
//! equal direct `ConcordePredictor::predict` results exactly, across mixed
//! workloads, and the TCP protocol must round-trip.

use std::time::Duration;

use concorde_suite::core::cache::{sweep_content_hash, FeatureKey};
use concorde_suite::prelude::*;

/// Small but real model + profile shared by the tests (trained once).
fn tiny_service_parts() -> (ConcordePredictor, ReproProfile) {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 2;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 16,
        seed: 11,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    (model, profile)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 64,
        batch_deadline: Duration::from_millis(2),
        ..ServeConfig::default()
    }
}

#[test]
fn served_predictions_equal_direct_predictions() {
    let (model, profile) = tiny_service_parts();
    let direct_model = model.clone();
    let service = PredictionService::start(model, profile.clone(), quick_config());
    let client = service.client();

    // Mixed workloads × architectures, ids interleaved.
    let workloads = ["S5", "O1", "C1"];
    let mut specs = Vec::new();
    for rob in [64u32, 256] {
        let mut s = ArchSpec::base("n1");
        s.rob = Some(rob);
        specs.push(s);
    }
    specs.push(ArchSpec::base("big"));
    let mut reqs: Vec<PredictRequest> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, w)| {
            specs
                .iter()
                .enumerate()
                .map(move |(si, spec)| PredictRequest {
                    id: (wi * 10 + si) as u64,
                    workload: (*w).into(),
                    arch: spec.clone(),
                    ..PredictRequest::default()
                })
        })
        .collect();
    // A mid-trace region: exercises the warmup-before-start convention.
    reqs.push(PredictRequest {
        id: 99,
        workload: "S5".into(),
        trace: 1,
        start: 8_192,
        arch: ArchSpec::base("n1"),
        ..PredictRequest::default()
    });

    let resps = client.predict_many(reqs.clone()).expect("batch prediction");
    assert_eq!(resps.len(), reqs.len());

    for (req, resp) in reqs.iter().zip(&resps) {
        assert_eq!(resp.id, req.id, "responses must come back in request order");
        let cpi = resp
            .cpi
            .unwrap_or_else(|| panic!("id {} errored: {:?}", resp.id, resp.error));

        // Rebuild the exact same store directly (dataset.rs region/warmup
        // convention: region at [start, start+len), warmup just before it)
        // and compare bitwise.
        let arch = req.arch.resolve().unwrap();
        let spec = by_id(&req.workload).unwrap();
        let warm_start = req.start.saturating_sub(profile.warmup_len as u64);
        let warm_len = (req.start - warm_start) as usize;
        let full = generate_region(&spec, req.trace, warm_start, warm_len + profile.region_len);
        let (w, r) = full.instrs.split_at(warm_len);
        let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile);
        let direct = direct_model.predict(&store, &arch);
        assert_eq!(
            direct.to_bits(),
            cpi.to_bits(),
            "id {}: served {cpi} != direct {direct}",
            resp.id
        );
    }

    let m = service.metrics();
    assert_eq!(m.completed, reqs.len() as u64);
    assert_eq!(m.errored, 0);
    assert!(m.batches >= 1);
    assert!(
        m.cache_misses >= 1,
        "first touch of each group must precompute"
    );
}

#[test]
fn repeated_queries_hit_the_cache() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(model, profile, quick_config());
    let client = service.client();
    let req = PredictRequest::new(1, "S5", ArchSpec::base("n1"));

    let first = client.predict(req.clone()).unwrap();
    assert!(!first.cached, "first query must precompute");
    let second = client.predict(req).unwrap();
    assert!(second.cached, "second query must reuse the cached store");
    assert_eq!(first.cpi.unwrap().to_bits(), second.cpi.unwrap().to_bits());

    let m = service.metrics();
    assert!(m.cache_hits >= 1);
}

#[test]
fn preloaded_artifact_makes_the_first_query_a_cache_hit() {
    let (model, profile) = tiny_service_parts();

    // Build the store offline, exactly as `concorde precompute` does.
    let arch = MicroArch::arm_n1();
    let sweep = SweepConfig::for_arch(&arch);
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.region_len);
    let store = FeatureStore::precompute(&[], &full.instrs, &sweep, &profile);
    let key = FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start: 0,
        region_len: profile.region_len as u32,
        sweep_hash: sweep_content_hash(&sweep),
    };
    let path = std::env::temp_dir().join("concorde_preload_test.cfa");
    StoreArtifact::new(key, store).save(&path).unwrap();

    let service = PredictionService::start(model, profile, quick_config());
    let loaded_key = service.preload_artifact(&path).unwrap();
    assert_eq!(loaded_key.workload, "S5");
    std::fs::remove_file(&path).ok();

    // An artifact keyed to the quantized sweep can never be hit by this
    // per-arch server: preloading it must fail loudly, not go silently cold.
    // (Validation reads the key, so a cheap per-arch store body suffices.)
    let quantized_key = FeatureKey {
        sweep_hash: sweep_content_hash(&SweepConfig::quantized()),
        ..loaded_key.clone()
    };
    let tiny_profile = ReproProfile {
        region_len: 512,
        warmup_len: 0,
        ..ReproProfile::quick()
    };
    let tiny_region = generate_region(&spec, 0, 0, 512);
    let tiny_store = FeatureStore::precompute(&[], &tiny_region.instrs, &sweep, &tiny_profile);
    let bad_path = std::env::temp_dir().join("concorde_preload_mismatch.cfa");
    StoreArtifact::new(quantized_key, tiny_store)
        .save(&bad_path)
        .unwrap();
    let err = service.preload_artifact(&bad_path).unwrap_err();
    assert!(err.to_string().contains("quantized"), "{err}");
    std::fs::remove_file(&bad_path).ok();

    let client = service.client();
    let resp = client
        .predict(PredictRequest::new(1, "S5", ArchSpec::base("n1")))
        .unwrap();
    assert!(
        resp.cached,
        "first query against a preloaded region must skip the precompute"
    );
    let m = service.metrics();
    assert_eq!(m.cache_misses, 0);
    assert!(m.cache_hits >= 1);
}

#[test]
fn served_schema_names_every_block() {
    let (model, profile) = tiny_service_parts();
    let encoding = profile.encoding;
    let service = PredictionService::start(model, profile, quick_config());
    let schema = service.schema();
    assert_eq!(schema.version, SCHEMA_VERSION);
    assert_eq!(
        schema.dim(),
        FeatureSchema::dim_for(encoding, schema.variant)
    );
    for res in Resource::ALL {
        assert!(schema.block(res.name()).is_some(), "{res:?}");
    }
    assert!(schema.block("params").is_some());
    // The in-process client serves the identical schema.
    assert_eq!(service.client().schema(), schema);
}

#[test]
fn unknown_workload_and_bad_arch_error_cleanly() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(model, profile, quick_config());
    let client = service.client();

    let bad_wl = client
        .predict(PredictRequest::new(7, "ZZ", ArchSpec::default()))
        .unwrap();
    assert!(bad_wl.cpi.is_none());
    assert!(bad_wl
        .error
        .as_deref()
        .unwrap_or("")
        .contains("unknown workload"));

    let bad_arch = client
        .predict(PredictRequest::new(8, "S5", ArchSpec::base("epyc")))
        .unwrap();
    assert!(bad_arch
        .error
        .as_deref()
        .unwrap_or("")
        .contains("unknown base arch"));

    // Zero-sized resources must be request errors, not worker panics: the
    // analytic models assert rob >= 1, and a panicking worker would shrink
    // the pool until the service wedged.
    let mut zero_rob = ArchSpec::base("n1");
    zero_rob.rob = Some(0);
    let bad_value = client
        .predict(PredictRequest::new(9, "S5", zero_rob))
        .unwrap();
    assert!(bad_value
        .error
        .as_deref()
        .unwrap_or("")
        .contains("out of range"));

    // Oversized region lengths are request errors, not multi-gigabyte
    // allocations inside a worker.
    let mut huge = PredictRequest::new(11, "S5", ArchSpec::base("n1"));
    huge.len = u32::MAX;
    let too_big = client.predict(huge).unwrap();
    assert!(too_big
        .error
        .as_deref()
        .unwrap_or("")
        .contains("exceeds the served maximum"));

    // The pool must still serve normal traffic afterwards.
    let ok = client
        .predict(PredictRequest::new(10, "S5", ArchSpec::base("n1")))
        .unwrap();
    assert!(
        ok.cpi.is_some(),
        "service must survive bad-value requests: {:?}",
        ok.error
    );

    let m = service.metrics();
    assert_eq!(m.errored, 4);
}

#[test]
fn concurrent_misses_coalesce_into_one_precompute() {
    // Single-flight deduplication: K concurrent misses on one FeatureKey
    // must trigger exactly one precompute, with every request answered from
    // the one build.
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 4,
            // Every request becomes its own batch group, so the dedup must
            // happen at the in-flight registry, not the batch grouper.
            max_batch: 1,
            batch_deadline: Duration::from_micros(1),
            precompute_workers: 1,
            ..ServeConfig::default()
        },
    );
    let client = service.client();
    let rxs: Vec<_> = (0..8u64)
        .map(|i| {
            let mut r = PredictRequest::new(i, "S5", ArchSpec::base("n1"));
            r.id = i;
            client.submit(r).expect("submit")
        })
        .collect();
    let resps: Vec<PredictResponse> = rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
    let first = resps[0].cpi.expect("first response has a CPI");
    for (i, r) in resps.iter().enumerate() {
        assert_eq!(r.id, i as u64, "responses must match their submission ids");
        assert_eq!(
            r.cpi.expect("cpi").to_bits(),
            first.to_bits(),
            "all coalesced requests share the one store's prediction"
        );
    }
    let m = service.metrics();
    assert_eq!(
        m.precomputes, 1,
        "8 concurrent misses on one key must run exactly one precompute"
    );
    assert_eq!(m.cache_misses, 1, "only the registering group is a miss");
    assert_eq!(m.completed, 8);
    assert_eq!(m.parked, 0, "no request may remain parked after completion");
}

#[test]
fn hits_are_served_while_a_cold_miss_builds() {
    // The tentpole property: with ONE batch worker, a cold-region build on
    // the precompute pool must not stop that worker from answering cache
    // hits. Under the old inline-miss path this test would stall for the
    // whole precompute before the first warm response.
    let (model, profile) = tiny_service_parts();
    let direct_model = model.clone();
    let service = PredictionService::start(
        model,
        profile.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            batch_deadline: Duration::from_micros(50),
            precompute_workers: 1,
            ..ServeConfig::default()
        },
    );
    let client = service.client();
    let warm = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    let warm_cpi = client.predict(warm.clone()).unwrap().cpi.unwrap();

    // A cold region big enough that its build dominates the warm loop below
    // (larger in release, where the precompute is fast enough that a small
    // region could land before the warm round trips finish).
    let mut cold = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    cold.start = 4096;
    cold.len = if cfg!(debug_assertions) {
        16_384
    } else {
        131_072
    };
    let cold_rx = client.submit(cold.clone()).unwrap();

    for i in 0..10u64 {
        let mut r = warm.clone();
        r.id = 10 + i;
        let resp = client.predict(r).unwrap();
        assert!(resp.cached, "warm requests must stay cache hits");
        assert_eq!(resp.cpi.unwrap().to_bits(), warm_cpi.to_bits());
    }
    assert!(
        matches!(
            cold_rx.try_recv(),
            Err(std::sync::mpsc::TryRecvError::Empty)
        ),
        "cold build finished before 10 warm hits — the hit path likely waited on the miss"
    );

    let cold_resp = cold_rx.recv().unwrap();
    assert!(!cold_resp.cached, "the cold request triggered the build");
    // The parked-and-re-enqueued path must still be bitwise identical to a
    // direct prediction over the same region/warmup convention.
    let arch = cold.arch.resolve().unwrap();
    let spec = by_id("O1").unwrap();
    let warm_start = cold.start - profile.warmup_len as u64;
    let full = generate_region(&spec, 0, warm_start, profile.warmup_len + cold.len as usize);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile);
    assert_eq!(
        cold_resp.cpi.unwrap().to_bits(),
        direct_model.predict(&store, &arch).to_bits()
    );
    let m = service.metrics();
    assert_eq!(m.parked, 0);
    assert_eq!(m.errored, 0);
}

#[test]
fn parked_requests_keep_their_ids_and_archs() {
    // K requests with distinct architectures and shuffled ids all park on
    // ONE quantized-store build; each response must carry its own id and its
    // own architecture's prediction (no cross-wiring through the park →
    // re-enqueue path).
    let (model, profile) = tiny_service_parts();
    let direct_model = model.clone();
    let service = PredictionService::start(
        model,
        profile.clone(),
        ServeConfig {
            workers: 2,
            // Small batches: the wave splits into several groups, so some
            // groups register the build and the rest coalesce onto it.
            max_batch: 2,
            batch_deadline: Duration::from_micros(50),
            sweep: SweepScope::Quantized,
            ..ServeConfig::default()
        },
    );
    let client = service.client();
    let robs = [64u32, 128, 256];
    let reqs: Vec<PredictRequest> = (0..9usize)
        .map(|i| {
            let mut spec = ArchSpec::base("n1");
            spec.rob = Some(robs[i % robs.len()]);
            let mut r = PredictRequest::new(100 - i as u64, "S5", spec);
            r.id = 100 - i as u64;
            r
        })
        .collect();
    let resps = client.predict_many(reqs.clone()).expect("batch prediction");

    // One quantized store serves every architecture; rebuild it directly.
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.region_len);
    let store = FeatureStore::precompute(&[], &full.instrs, &SweepConfig::quantized(), &profile);
    for (req, resp) in reqs.iter().zip(&resps) {
        assert_eq!(resp.id, req.id, "responses must match submission ids");
        let arch = req.arch.resolve().unwrap();
        let direct = direct_model.predict(&store, &arch);
        assert_eq!(
            resp.cpi.expect("cpi").to_bits(),
            direct.to_bits(),
            "id {}: parked response must match its own arch's prediction",
            resp.id
        );
    }
    let m = service.metrics();
    assert_eq!(m.precomputes, 1, "one key → one build, however many groups");
    assert_eq!(m.parked, 0);
}

#[test]
fn hot_cold_keys_build_before_lonely_ones() {
    // Miss-pool prioritization: with the single pool worker pinned on a slow
    // build (A), a cold key with 3 parked requests (C) must build before a
    // cold key with 1 parked request (B) submitted *earlier* — parked-count
    // order, not FIFO.
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 2,
            max_batch: 1,
            batch_deadline: Duration::from_micros(1),
            precompute_workers: 1,
            ..ServeConfig::default()
        },
    );
    let client = service.client();
    let mut a = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    a.len = if cfg!(debug_assertions) {
        16_384
    } else {
        131_072
    };
    let a_rx = client.submit(a).unwrap();

    // B first (1 waiter), then C (3 waiters on one key).
    let mut b = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    b.start = 65_536;
    b.len = 512;
    let b_rx = client.submit(b).unwrap();
    let c_rxs: Vec<_> = (0..3u64)
        .map(|i| {
            let mut c = PredictRequest::new(10 + i, "C1", ArchSpec::base("n1"));
            c.start = 65_536;
            c.len = 512;
            client.submit(c).unwrap()
        })
        .collect();
    // Guard: the ordering below is only meaningful if the pool was still
    // busy with A while B and C queued. A's build takes orders of magnitude
    // longer than these submissions, so this effectively never skips.
    let contended = service.metrics().precomputes == 0;

    let b_resp = b_rx.recv().unwrap();
    let c_resps: Vec<PredictResponse> = c_rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
    let a_resp = a_rx.recv().unwrap();
    for r in c_resps.iter().chain([&b_resp, &a_resp]) {
        assert!(r.cpi.is_some(), "id {}: {:?}", r.id, r.error);
    }
    if contended {
        // `micros` is enqueue→response latency; B was enqueued *before*
        // every C, so B finishing after C implies strictly larger latency.
        let c_max = c_resps.iter().map(|r| r.micros).max().unwrap();
        assert!(
            b_resp.micros > c_max,
            "the 3-waiter key must build before the earlier 1-waiter key \
             (B {}µs vs C max {}µs)",
            b_resp.micros,
            c_max
        );
        let m = service.metrics();
        assert_eq!(m.coalesced, 2, "C's extra requests must coalesce");
        assert_eq!(m.precomputes, 3, "three keys → three builds");
        assert_eq!(m.parked, 0);
    }
}

#[test]
fn int8_serving_matches_f32_within_tolerance() {
    // `--encoding int8` end to end: the miss path quantizes built stores, the
    // schema + stats report it, and predictions stay within the drift bound
    // pinned by tests/quantization.rs.
    let (model, profile) = tiny_service_parts();
    let f32_model = model.clone();
    let service = PredictionService::start(
        model,
        profile.clone(),
        ServeConfig {
            store_encoding: ArenaEncoding::Int8,
            ..quick_config()
        },
    );
    let client = service.client();
    let req = PredictRequest::new(1, "S5", ArchSpec::base("n1"));
    let first = client.predict(req.clone()).unwrap();
    let cpi = first.cpi.expect("int8 serving must answer");
    // Reference: the same region through an f32 store, predicted directly.
    let arch = req.arch.resolve().unwrap();
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.region_len);
    let store =
        FeatureStore::precompute(&[], &full.instrs, &SweepConfig::for_arch(&arch), &profile);
    let direct = f32_model.predict(&store, &arch);
    assert!(
        (cpi - direct).abs() / direct < 0.05,
        "int8-served CPI {cpi} vs f32 direct {direct}"
    );
    // The quantized store is what's resident: it must be smaller than its
    // f32 equivalent would be.
    let stats = service.stats();
    assert_eq!(stats.store_encoding, Some(ArenaEncoding::Int8));
    // Strictly smaller resident footprint than the f32 equivalent (this
    // tiny 2048-instruction fixture is dominated by fixed struct overhead;
    // the ≥3× arena shrinkage is pinned in tests/quantization.rs).
    assert!(stats.cache.totals.bytes < store.approx_bytes());
    assert_eq!(service.schema().arena_encoding, ArenaEncoding::Int8);
    // Repeat queries hit the quantized store bitwise-stably.
    let second = client.predict(req).unwrap();
    assert!(second.cached);
    assert_eq!(second.cpi.unwrap().to_bits(), cpi.to_bits());
}

#[test]
fn int8_model_serving_equals_direct_fused_prediction() {
    // `--model-encoding int8` end to end: group evaluation runs the fused
    // dequantize-assembly path, equals direct `predict_quantized` bitwise,
    // stays within the 5% drift pin of f32 serving, and the stats report
    // the encoding + active kernel.
    let (model, profile) = tiny_service_parts();
    let direct_model = model.clone();
    let qmlp = direct_model.quantized();
    let service = PredictionService::start(
        model,
        profile.clone(),
        ServeConfig {
            model_encoding: concorde_suite::core::model::ModelEncoding::Int8,
            ..quick_config()
        },
    );
    let client = service.client();
    let mut big_spec = ArchSpec::base("big");
    big_spec.rob = Some(192);
    for (id, spec) in [(1u64, ArchSpec::base("n1")), (2, big_spec)] {
        let req = PredictRequest {
            id,
            workload: "S5".into(),
            arch: spec,
            ..PredictRequest::default()
        };
        let resp = client.predict(req.clone()).unwrap();
        let cpi = resp.cpi.expect("int8-model serving must answer");

        let arch = req.arch.resolve().unwrap();
        let spec = by_id("S5").unwrap();
        let full = generate_region(&spec, 0, 0, profile.region_len);
        let store =
            FeatureStore::precompute(&[], &full.instrs, &SweepConfig::for_arch(&arch), &profile);
        let mut buf = concorde_suite::ml::QuantFeatureBuf::default();
        let mut scratch = concorde_suite::ml::QuantScratch::default();
        let fused = direct_model.predict_quantized(&qmlp, &store, &arch, &mut buf, &mut scratch);
        assert_eq!(
            fused.to_bits(),
            cpi.to_bits(),
            "id {id}: served {cpi} != direct fused {fused}"
        );
        let f32_direct = direct_model.predict(&store, &arch);
        assert!(
            (cpi - f32_direct).abs() / f32_direct < 0.05,
            "id {id}: int8-model CPI {cpi} drifts >5% from f32 {f32_direct}"
        );
    }
    let stats = service.stats();
    assert_eq!(
        stats.model_encoding,
        Some(concorde_suite::core::model::ModelEncoding::Int8)
    );
    assert_eq!(
        stats.kernel.as_deref(),
        Some(concorde_suite::ml::kernel_name())
    );
    // An f32 service reports its (default) encoding too.
    assert_eq!(
        client.model_encoding(),
        concorde_suite::core::model::ModelEncoding::Int8
    );
}

#[test]
fn stats_report_cache_occupancy_and_bytes() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 2,
            cache_shards: 4,
            ..ServeConfig::default()
        },
    );
    let client = service.client();
    client
        .predict(PredictRequest::new(1, "S5", ArchSpec::base("n1")))
        .unwrap();
    let stats = service.stats();
    assert_eq!(stats.cache.shard_count, 4);
    assert_eq!(stats.cache.per_shard.len(), 4);
    assert_eq!(stats.cache.totals.stores, 1);
    assert!(
        stats.cache.totals.bytes > 0,
        "resident bytes must be tracked"
    );
    assert_eq!(stats.cache.budget_bytes, ServeConfig::default().cache_bytes);
    assert_eq!(
        stats.cache.per_shard.iter().map(|s| s.bytes).sum::<usize>(),
        stats.cache.totals.bytes,
        "per-shard occupancy must sum to the aggregate"
    );
    assert_eq!(stats.metrics.cache_stores, 1);
    assert_eq!(stats.metrics.cache_bytes, stats.cache.totals.bytes);
    assert_eq!(stats.workers, 2);
    assert!(stats.precompute_workers >= 1);
    // The in-process client serves the identical report.
    let via_client = client.service_stats();
    assert_eq!(via_client.cache.totals.stores, 1);
    assert_eq!(via_client.cache.totals.bytes, stats.cache.totals.bytes);
}

#[test]
fn connection_cap_returns_typed_busy_error() {
    use std::io::BufRead;

    let (model, profile) = tiny_service_parts();
    let service = Box::leak(Box::new(PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 1,
            max_connections: 1,
            ..ServeConfig::default()
        },
    )));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service: &PredictionService = service;
    std::thread::spawn(move || {
        let _ = service.serve_tcp(listener);
    });

    let mut first = TcpClient::connect(&addr).expect("first connection");
    // A roundtrip guarantees the accept loop has registered the connection.
    first.metrics().expect("first connection is served");

    // The second concurrent connection must receive one typed busy line.
    let second = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = std::io::BufReader::new(second);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v: serde_json::Value = serde_json::from_str(&line).expect("busy reply is JSON");
    assert_eq!(
        v["type"].as_str(),
        Some("busy"),
        "reply must be typed: {line}"
    );
    assert!(v["error"].as_str().unwrap_or("").contains("busy"));
    assert_eq!(v["max_connections"].as_u64(), Some(1));
    let mut end = String::new();
    assert_eq!(
        reader.read_line(&mut end).unwrap(),
        0,
        "busy connection must be closed after the error line"
    );

    let m = service.metrics();
    assert!(m.busy_rejected >= 1);

    // Once the admitted connection closes, its slot frees up.
    drop(first);
    let mut admitted = false;
    for _ in 0..100 {
        if let Ok(mut c) = TcpClient::connect(&addr) {
            if c.metrics().is_ok() {
                admitted = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(admitted, "slot must free after the first connection closes");
}

#[test]
fn feature_key_matches_service_grouping() {
    // The cache key the service derives for two equal requests must be equal,
    // and differ across sweeps.
    let n1 = SweepConfig::for_arch(&MicroArch::arm_n1());
    let big = SweepConfig::for_arch(&MicroArch::big_core());
    let key = |sweep: &SweepConfig| FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start: 0,
        region_len: 2048,
        sweep_hash: sweep_content_hash(sweep),
    };
    assert_eq!(key(&n1), key(&n1));
    assert_ne!(key(&n1), key(&big));
}

#[test]
fn tcp_protocol_roundtrip() {
    let (model, profile) = tiny_service_parts();
    let service = Box::leak(Box::new(PredictionService::start(
        model,
        profile,
        quick_config(),
    )));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = service.serve_tcp(listener);
    });

    let mut client = TcpClient::connect(&addr).expect("connect to in-test server");

    // Single request.
    let resp = client
        .predict(&PredictRequest::new(3, "S5", ArchSpec::base("n1")))
        .unwrap();
    assert_eq!(resp.id, 3);
    assert!(resp.cpi.unwrap() > 0.0);

    // Array request → array response, in order.
    let reqs = vec![
        PredictRequest::new(10, "S5", ArchSpec::base("n1")),
        PredictRequest::new(11, "O1", ArchSpec::base("big")),
    ];
    let resps = client.predict_many(&reqs).unwrap();
    assert_eq!(resps.len(), 2);
    assert_eq!(resps[0].id, 10);
    assert_eq!(resps[1].id, 11);
    assert!(
        resps[0].cached,
        "S5/n1 store was cached by the first request"
    );

    // Metrics, stats, and catalog commands.
    let m = client.metrics().unwrap();
    assert!(m.completed >= 3);
    let stats = client.stats().unwrap();
    assert!(stats.cache.totals.stores >= 1);
    assert!(stats.cache.totals.bytes > 0);
    assert_eq!(stats.cache.per_shard.len(), stats.cache.shard_count);
    let wl = client.workloads().unwrap();
    assert_eq!(wl.as_array().map(Vec::len), Some(suite().len()));
}
