//! End-to-end tests of the `concorde-serve` engine: served predictions must
//! equal direct `ConcordePredictor::predict` results exactly, across mixed
//! workloads, and the TCP protocol must round-trip.

use std::time::Duration;

use concorde_suite::core::cache::{sweep_content_hash, FeatureKey};
use concorde_suite::prelude::*;

/// Small but real model + profile shared by the tests (trained once).
fn tiny_service_parts() -> (ConcordePredictor, ReproProfile) {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 2;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 16,
        seed: 11,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    (model, profile)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 64,
        batch_deadline: Duration::from_millis(2),
        ..ServeConfig::default()
    }
}

#[test]
fn served_predictions_equal_direct_predictions() {
    let (model, profile) = tiny_service_parts();
    let direct_model = model.clone();
    let service = PredictionService::start(model, profile.clone(), quick_config());
    let client = service.client();

    // Mixed workloads × architectures, ids interleaved.
    let workloads = ["S5", "O1", "C1"];
    let mut specs = Vec::new();
    for rob in [64u32, 256] {
        let mut s = ArchSpec::base("n1");
        s.rob = Some(rob);
        specs.push(s);
    }
    specs.push(ArchSpec::base("big"));
    let mut reqs: Vec<PredictRequest> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, w)| {
            specs
                .iter()
                .enumerate()
                .map(move |(si, spec)| PredictRequest {
                    id: (wi * 10 + si) as u64,
                    workload: w.to_string(),
                    trace: 0,
                    start: 0,
                    len: 0,
                    arch: spec.clone(),
                })
        })
        .collect();
    // A mid-trace region: exercises the warmup-before-start convention.
    reqs.push(PredictRequest {
        id: 99,
        workload: "S5".to_string(),
        trace: 1,
        start: 8_192,
        len: 0,
        arch: ArchSpec::base("n1"),
    });

    let resps = client.predict_many(reqs.clone()).expect("batch prediction");
    assert_eq!(resps.len(), reqs.len());

    for (req, resp) in reqs.iter().zip(&resps) {
        assert_eq!(resp.id, req.id, "responses must come back in request order");
        let cpi = resp
            .cpi
            .unwrap_or_else(|| panic!("id {} errored: {:?}", resp.id, resp.error));

        // Rebuild the exact same store directly (dataset.rs region/warmup
        // convention: region at [start, start+len), warmup just before it)
        // and compare bitwise.
        let arch = req.arch.resolve().unwrap();
        let spec = by_id(&req.workload).unwrap();
        let warm_start = req.start.saturating_sub(profile.warmup_len as u64);
        let warm_len = (req.start - warm_start) as usize;
        let full = generate_region(&spec, req.trace, warm_start, warm_len + profile.region_len);
        let (w, r) = full.instrs.split_at(warm_len);
        let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile);
        let direct = direct_model.predict(&store, &arch);
        assert_eq!(
            direct.to_bits(),
            cpi.to_bits(),
            "id {}: served {cpi} != direct {direct}",
            resp.id
        );
    }

    let m = service.metrics();
    assert_eq!(m.completed, reqs.len() as u64);
    assert_eq!(m.errored, 0);
    assert!(m.batches >= 1);
    assert!(
        m.cache_misses >= 1,
        "first touch of each group must precompute"
    );
}

#[test]
fn repeated_queries_hit_the_cache() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(model, profile, quick_config());
    let client = service.client();
    let req = PredictRequest::new(1, "S5", ArchSpec::base("n1"));

    let first = client.predict(req.clone()).unwrap();
    assert!(!first.cached, "first query must precompute");
    let second = client.predict(req).unwrap();
    assert!(second.cached, "second query must reuse the cached store");
    assert_eq!(first.cpi.unwrap().to_bits(), second.cpi.unwrap().to_bits());

    let m = service.metrics();
    assert!(m.cache_hits >= 1);
}

#[test]
fn preloaded_artifact_makes_the_first_query_a_cache_hit() {
    let (model, profile) = tiny_service_parts();

    // Build the store offline, exactly as `concorde precompute` does.
    let arch = MicroArch::arm_n1();
    let sweep = SweepConfig::for_arch(&arch);
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.region_len);
    let store = FeatureStore::precompute(&[], &full.instrs, &sweep, &profile);
    let key = FeatureKey {
        workload: "S5".to_string(),
        trace: 0,
        start: 0,
        region_len: profile.region_len as u32,
        sweep_hash: sweep_content_hash(&sweep),
    };
    let path = std::env::temp_dir().join("concorde_preload_test.cfa");
    StoreArtifact::new(key, store).save(&path).unwrap();

    let service = PredictionService::start(model, profile, quick_config());
    let loaded_key = service.preload_artifact(&path).unwrap();
    assert_eq!(loaded_key.workload, "S5");
    std::fs::remove_file(&path).ok();

    // An artifact keyed to the quantized sweep can never be hit by this
    // per-arch server: preloading it must fail loudly, not go silently cold.
    // (Validation reads the key, so a cheap per-arch store body suffices.)
    let quantized_key = FeatureKey {
        sweep_hash: sweep_content_hash(&SweepConfig::quantized()),
        ..loaded_key.clone()
    };
    let tiny_profile = ReproProfile {
        region_len: 512,
        warmup_len: 0,
        ..ReproProfile::quick()
    };
    let tiny_region = generate_region(&spec, 0, 0, 512);
    let tiny_store = FeatureStore::precompute(&[], &tiny_region.instrs, &sweep, &tiny_profile);
    let bad_path = std::env::temp_dir().join("concorde_preload_mismatch.cfa");
    StoreArtifact::new(quantized_key, tiny_store)
        .save(&bad_path)
        .unwrap();
    let err = service.preload_artifact(&bad_path).unwrap_err();
    assert!(err.to_string().contains("quantized"), "{err}");
    std::fs::remove_file(&bad_path).ok();

    let client = service.client();
    let resp = client
        .predict(PredictRequest::new(1, "S5", ArchSpec::base("n1")))
        .unwrap();
    assert!(
        resp.cached,
        "first query against a preloaded region must skip the precompute"
    );
    let m = service.metrics();
    assert_eq!(m.cache_misses, 0);
    assert!(m.cache_hits >= 1);
}

#[test]
fn served_schema_names_every_block() {
    let (model, profile) = tiny_service_parts();
    let encoding = profile.encoding;
    let service = PredictionService::start(model, profile, quick_config());
    let schema = service.schema();
    assert_eq!(schema.version, SCHEMA_VERSION);
    assert_eq!(
        schema.dim(),
        FeatureSchema::dim_for(encoding, schema.variant)
    );
    for res in Resource::ALL {
        assert!(schema.block(res.name()).is_some(), "{res:?}");
    }
    assert!(schema.block("params").is_some());
    // The in-process client serves the identical schema.
    assert_eq!(service.client().schema(), schema);
}

#[test]
fn unknown_workload_and_bad_arch_error_cleanly() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(model, profile, quick_config());
    let client = service.client();

    let bad_wl = client
        .predict(PredictRequest::new(7, "ZZ", ArchSpec::default()))
        .unwrap();
    assert!(bad_wl.cpi.is_none());
    assert!(bad_wl
        .error
        .as_deref()
        .unwrap_or("")
        .contains("unknown workload"));

    let bad_arch = client
        .predict(PredictRequest::new(8, "S5", ArchSpec::base("epyc")))
        .unwrap();
    assert!(bad_arch
        .error
        .as_deref()
        .unwrap_or("")
        .contains("unknown base arch"));

    // Zero-sized resources must be request errors, not worker panics: the
    // analytic models assert rob >= 1, and a panicking worker would shrink
    // the pool until the service wedged.
    let mut zero_rob = ArchSpec::base("n1");
    zero_rob.rob = Some(0);
    let bad_value = client
        .predict(PredictRequest::new(9, "S5", zero_rob))
        .unwrap();
    assert!(bad_value
        .error
        .as_deref()
        .unwrap_or("")
        .contains("out of range"));

    // Oversized region lengths are request errors, not multi-gigabyte
    // allocations inside a worker.
    let mut huge = PredictRequest::new(11, "S5", ArchSpec::base("n1"));
    huge.len = u32::MAX;
    let too_big = client.predict(huge).unwrap();
    assert!(too_big
        .error
        .as_deref()
        .unwrap_or("")
        .contains("exceeds the served maximum"));

    // The pool must still serve normal traffic afterwards.
    let ok = client
        .predict(PredictRequest::new(10, "S5", ArchSpec::base("n1")))
        .unwrap();
    assert!(
        ok.cpi.is_some(),
        "service must survive bad-value requests: {:?}",
        ok.error
    );

    let m = service.metrics();
    assert_eq!(m.errored, 4);
}

#[test]
fn feature_key_matches_service_grouping() {
    // The cache key the service derives for two equal requests must be equal,
    // and differ across sweeps.
    let n1 = SweepConfig::for_arch(&MicroArch::arm_n1());
    let big = SweepConfig::for_arch(&MicroArch::big_core());
    let key = |sweep: &SweepConfig| FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start: 0,
        region_len: 2048,
        sweep_hash: sweep_content_hash(sweep),
    };
    assert_eq!(key(&n1), key(&n1));
    assert_ne!(key(&n1), key(&big));
}

#[test]
fn tcp_protocol_roundtrip() {
    let (model, profile) = tiny_service_parts();
    let service = Box::leak(Box::new(PredictionService::start(
        model,
        profile,
        quick_config(),
    )));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = service.serve_tcp(listener);
    });

    let mut client = TcpClient::connect(&addr).expect("connect to in-test server");

    // Single request.
    let resp = client
        .predict(&PredictRequest::new(3, "S5", ArchSpec::base("n1")))
        .unwrap();
    assert_eq!(resp.id, 3);
    assert!(resp.cpi.unwrap() > 0.0);

    // Array request → array response, in order.
    let reqs = vec![
        PredictRequest::new(10, "S5", ArchSpec::base("n1")),
        PredictRequest::new(11, "O1", ArchSpec::base("big")),
    ];
    let resps = client.predict_many(&reqs).unwrap();
    assert_eq!(resps.len(), 2);
    assert_eq!(resps[0].id, 10);
    assert_eq!(resps[1].id, 11);
    assert!(
        resps[0].cached,
        "S5/n1 store was cached by the first request"
    );

    // Metrics and catalog commands.
    let m = client.metrics().unwrap();
    assert!(m.completed >= 3);
    let wl = client.workloads().unwrap();
    assert_eq!(wl.as_array().map(Vec::len), Some(suite().len()));
}
