//! Proves the serving warm path performs **zero heap allocations** per
//! request, end to end: wire decode ([`decode_request_line`]) → bulk slot
//! submission ([`Client::predict_batch_into`]) → sharded dispatch → batched
//! feature assembly and MLP forward → slot delivery → reply encode
//! ([`PredictResponse::encode_json_into`]).
//!
//! Everything reusable is caller- or worker-owned scratch: request/response
//! buffers, response slots, group maps, assembly plans, kernel workspaces,
//! the encode `String`. After a warm-up phase (which *is* allowed to
//! allocate — slab growth, cache fill, capacity discovery) the counting
//! allocator must observe zero allocations across many full round trips.
//!
//! Own test binary so no other test's allocations race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use concorde_suite::prelude::*;
use concorde_suite::serve::protocol::decode_request_line;
use concorde_suite::serve::BatchScratch;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

/// One wire batch: eight requests against two distinct (cached)
/// microarchitectures of the same workload, so the warm path exercises
/// grouping, dedup, and multi-row batched assembly — not just a
/// single-request fast case.
const LINE: &str = r#"[{"id":1,"workload":"S5"},{"id":2,"workload":"S5","arch":{"rob":160}},{"id":3,"workload":"S5"},{"id":4,"workload":"S5","arch":{"rob":160}},{"id":5,"workload":"S5"},{"id":6,"workload":"S5"},{"id":7,"workload":"S5","arch":{"rob":160}},{"id":8,"workload":"S5"}]"#;

#[test]
fn warm_serving_round_trip_allocates_nothing() {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 2;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 16,
        seed: 11,
        arch: ArchSampling::Random,
        workloads: Some(vec![15]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    let service = PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 1,
            precompute_workers: 1,
            max_batch: 8,
            batch_deadline: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let client = service.client();

    let mut reqs: Vec<PredictRequest> = Vec::new();
    let mut out: Vec<PredictResponse> = Vec::new();
    let mut scratch = BatchScratch::default();
    let mut reply = String::new();

    let round = |reqs: &mut Vec<PredictRequest>,
                 scratch: &mut BatchScratch,
                 out: &mut Vec<PredictResponse>,
                 reply: &mut String| {
        decode_request_line(LINE, reqs).expect("fast decode");
        client
            .predict_batch_into(reqs, scratch, out)
            .expect("predict batch");
        assert_eq!(out.len(), 8);
        reply.clear();
        reply.push('[');
        for (i, resp) in out.iter().enumerate() {
            assert!(resp.error.is_none(), "unexpected error: {:?}", resp.error);
            if i > 0 {
                reply.push(',');
            }
            resp.encode_json_into(reply);
        }
        reply.push(']');
    };

    // Warm-up: fill the feature-store cache, grow the slot slab, queue
    // shards, group maps, kernel scratch, and the encode buffer to
    // steady-state capacity.
    for _ in 0..50 {
        round(&mut reqs, &mut scratch, &mut out, &mut reply);
    }
    // Bitwise-stable answers to re-check after measuring (`micros` varies
    // per round, so pin the CPI bits rather than the encoded reply).
    let golden: Vec<u64> = out
        .iter()
        .map(|r| r.cpi.expect("warm response has cpi").to_bits())
        .collect();
    // Let the precompute pool go fully quiescent before counting.
    std::thread::sleep(Duration::from_millis(50));

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..100 {
        round(&mut reqs, &mut scratch, &mut out, &mut reply);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm serving path allocated {} times across 100 round trips",
        after - before
    );
    // And the answers stayed bitwise identical while we were at it.
    let final_cpis: Vec<u64> = out
        .iter()
        .map(|r| r.cpi.expect("warm response has cpi").to_bits())
        .collect();
    assert_eq!(final_cpis, golden);
}
