//! Chaos/fault-injection soak: a seeded client mix runs under an active
//! [`FaultPlan`] that panics a batched evaluation, panics (then retries) a
//! store build, stalls a build, and drops TCP replies mid-connection — plus
//! one corrupt-artifact `--preload`-path load. The engine must absorb all
//! of it: every submitted request receives exactly one answer (exact or a
//! typed `{"type":"error","reason":"internal"}` line), nothing is stranded
//! after the drain, no lock is poisoned (post-fault predictions still
//! work), and every exact answer is bitwise identical to a fault-free run
//! of the same request set.
//!
//! Determinism: the request streams derive from fixed ChaCha12 seeds and
//! the fault plan fires at fixed ordinals. Which request lands on a fired
//! ordinal is scheduling-dependent; every assertion here is therefore
//! interleaving-independent (counts, invariants, and per-key bitwise
//! comparisons — never "request N fails").

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use concorde_suite::core::cache::{sweep_content_hash, FeatureKey};
use concorde_suite::prelude::*;
use concorde_suite::serve::FaultPlan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn tiny_service_parts() -> (ConcordePredictor, ReproProfile) {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 1;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 8,
        seed: 31,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    (model, profile)
}

/// Same hot/cold mix as the plain soak: two hot keys that stay resident
/// plus a ring of cold keys the byte budget keeps evicting, with a small
/// arch wobble to exercise per-request assembly.
fn churn_request(rng: &mut ChaCha12Rng, id: u64) -> PredictRequest {
    let hot = rng.gen_range(0..10) < 7;
    let mut spec = ArchSpec::base("n1");
    spec.rob = Some(128 + 32 * rng.gen_range(0..2u32));
    if hot {
        let mut r =
            PredictRequest::new(id, if rng.gen_range(0..2) == 0 { "S5" } else { "O1" }, spec);
        r.trace = 0;
        r
    } else {
        let workloads = ["S5", "O1", "C1"];
        let mut r = PredictRequest::new(id, workloads[rng.gen_range(0..3) as usize], spec);
        r.start = 1_000_000 * u64::from(1 + rng.gen_range(0..6u32));
        r.len = 512;
        r
    }
}

/// Identity of an exact answer: everything that determines the CPI bits.
fn answer_key(req: &PredictRequest) -> (KeyStr, u32, u64, u32, Option<u32>) {
    (
        req.workload.clone(),
        req.trace,
        req.start,
        req.len,
        req.arch.rob,
    )
}

/// The injected schedule: the 2nd batched eval panics, the 1st store build
/// panics (its re-queued retry is build ordinal 2, which instead stalls
/// 30 ms and succeeds — so the parked waiters still get exact answers),
/// and TCP replies 2 and 5 are dropped mid-connection.
const CHAOS_PLAN: &str = "panic_eval@2;panic_build@1;slow_build@2:30ms;drop_reply@2,5";

#[test]
fn chaos_faults_never_strand_requests_or_corrupt_answers() {
    let (model, profile) = tiny_service_parts();

    // Offline artifact for the S5 hot key, and a bit-flipped copy of it.
    let arch = MicroArch::arm_n1();
    let sweep = SweepConfig::for_arch(&arch);
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.region_len);
    let hot_store = FeatureStore::precompute(&[], &full.instrs, &sweep, &profile);
    let hot_bytes = hot_store.approx_bytes();
    let key = FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start: 0,
        region_len: profile.region_len as u32,
        sweep_hash: sweep_content_hash(&sweep),
    };
    let good = std::env::temp_dir().join("concorde_chaos_good.cfa");
    StoreArtifact::new(key, hot_store).save(&good).unwrap();
    let corrupt = std::env::temp_dir().join("concorde_chaos_corrupt.cfa");
    let mut bytes = std::fs::read(&good).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&corrupt, &bytes).unwrap();

    // The deterministic request set, shared by the fault-free baseline and
    // the chaos run: three in-process streams plus one TCP stream.
    let mut streams: Vec<Vec<PredictRequest>> = Vec::new();
    for t in 0..3u64 {
        let mut rng = ChaCha12Rng::seed_from_u64(4_000 + t);
        streams.push(
            (0..24)
                .map(|i| churn_request(&mut rng, t * 1_000 + i))
                .collect(),
        );
    }
    let mut rng = ChaCha12Rng::seed_from_u64(77);
    let tcp_reqs: Vec<PredictRequest> = (0..10)
        .map(|i| churn_request(&mut rng, 9_000 + i))
        .collect();
    let mut preloaded_req = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    preloaded_req.arch.rob = Some(128);

    let cfg = |plan: Option<Arc<FaultPlan>>| ServeConfig {
        workers: 2,
        max_batch: 4,
        batch_deadline: Duration::from_micros(200),
        precompute_workers: 2,
        cache_shards: 1,
        cache_bytes: hot_bytes * 5 / 2,
        fault_plan: plan,
        ..ServeConfig::default()
    };

    // ---- Fault-free baseline: the bitwise ground truth ------------------
    let baseline_bits: HashMap<_, u64> = {
        let service = PredictionService::start(model.clone(), profile.clone(), cfg(None));
        service.preload_artifact(&good).unwrap();
        let client = service.client();
        let mut bits = HashMap::new();
        for req in streams
            .iter()
            .flatten()
            .chain(&tcp_reqs)
            .chain(std::iter::once(&preloaded_req))
        {
            let resp = client.predict(req.clone()).unwrap();
            let cpi = resp
                .cpi
                .unwrap_or_else(|| panic!("baseline id {} errored: {:?}", resp.id, resp.error));
            assert!(!resp.approx, "no shedding configured");
            bits.insert(answer_key(req), cpi.to_bits());
        }
        bits
    };

    // ---- Chaos run ------------------------------------------------------
    let plan = Arc::new(FaultPlan::parse(CHAOS_PLAN).unwrap());
    let service = Box::leak(Box::new(PredictionService::start(
        model,
        profile,
        cfg(Some(Arc::clone(&plan))),
    )));

    // ≥1 corrupt-artifact load: the bit-flipped file is rejected with the
    // typed checksum error, and the service stays fully serviceable.
    let err = service.preload_artifact(&corrupt).unwrap_err();
    assert!(
        err.to_string().contains("checksum mismatch"),
        "corrupt preload must fail typed, got: {err}"
    );
    service.preload_artifact(&good).unwrap();
    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&corrupt).ok();

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service: &'static PredictionService = service;
    let server = std::thread::spawn(move || service.serve_tcp(listener));

    // In-process churn under the active plan: every reply is either an
    // exact answer bitwise-equal to the baseline, or a typed internal
    // error minted by an injected panic.
    let mut handles = Vec::new();
    for reqs in streams {
        let client = service.client();
        let baseline = baseline_bits.clone();
        handles.push(std::thread::spawn(move || {
            let mut internal = 0u64;
            for chunk in reqs.chunks(3) {
                let got = client.predict_many(chunk.to_vec()).expect("chaos batch");
                for (req, resp) in chunk.iter().zip(got) {
                    match resp.cpi {
                        Some(cpi) => {
                            assert!(!resp.approx, "no shedding configured");
                            assert_eq!(
                                cpi.to_bits(),
                                baseline[&answer_key(req)],
                                "chaos answer for {:?} diverged from the fault-free run",
                                answer_key(req)
                            );
                        }
                        None => {
                            assert_eq!(
                                resp.kind.as_deref(),
                                Some("error"),
                                "untyped failure: {:?}",
                                resp.error
                            );
                            assert_eq!(
                                resp.reason.as_deref(),
                                Some("internal"),
                                "only typed internal errors are acceptable: {:?}",
                                resp.error
                            );
                            internal += 1;
                        }
                    }
                }
            }
            internal
        }));
    }

    // TCP churn that must survive the injected mid-reply socket drops: a
    // dropped reply surfaces as EOF, and the client reconnects (with the
    // backoff schedule) and resubmits. The engine answered the first
    // submission into the dying connection, so completed==submitted still
    // audits every copy.
    let reconnect = || {
        TcpClient::connect_with_retry(
            &addr,
            5,
            Duration::from_millis(10),
            Duration::from_millis(100),
        )
    };
    let mut tcp = reconnect().expect("tcp connect");
    let mut tcp_drops = 0u64;
    for req in &tcp_reqs {
        let mut attempts = 0;
        loop {
            match tcp.predict(req) {
                Ok(resp) => {
                    if let Some(cpi) = resp.cpi {
                        assert_eq!(
                            cpi.to_bits(),
                            baseline_bits[&answer_key(req)],
                            "tcp chaos answer for {:?} diverged",
                            answer_key(req)
                        );
                    } else {
                        assert_eq!(resp.reason.as_deref(), Some("internal"), "{:?}", resp.error);
                    }
                    break;
                }
                Err(_) => {
                    tcp_drops += 1;
                    attempts += 1;
                    assert!(attempts <= 5, "tcp request kept failing past the drops");
                    tcp = reconnect().expect("tcp reconnect");
                }
            }
        }
    }

    let internal_errors: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("churn thread"))
        .sum();

    // Graceful drain over the wire: the command is acknowledged, the
    // accept loop stops, live handlers finish, and serve_tcp returns.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(b"{\"cmd\":\"drain\"}\n").unwrap();
        s.flush().unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(
            v.get("draining").and_then(serde_json::Value::as_bool),
            Some(true),
            "{line}"
        );
    }
    server
        .join()
        .expect("server thread")
        .expect("serve_tcp error");
    assert!(service.is_draining());

    // Drain the engine: no parked jobs, queued builds, or unanswered
    // submissions survive the churn.
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let m = service.metrics();
        if m.parked == 0
            && m.miss_backlog == 0
            && m.inflight_builds == 0
            && m.queue_depth == 0
            && m.completed >= m.submitted
        {
            break;
        }
        assert!(Instant::now() < deadline, "chaos soak never drained: {m:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let m = service.metrics();
    assert_eq!(
        m.completed, m.submitted,
        "every submission (faulted ones included) must be answered exactly once"
    );

    // The plan fired every fault class at least once, and each injected
    // panic was caught and counted — not leaked into a thread death.
    let (evals, builds, stalls, drops) = plan.fired();
    assert!(evals >= 1, "no injected eval panic fired");
    assert!(builds >= 1, "no injected build panic fired");
    assert!(stalls >= 1, "no injected slow build fired");
    assert!(drops >= 1, "no injected reply drop fired");
    assert!(tcp_drops >= 1, "the client never observed a dropped reply");
    assert!(
        m.worker_panics >= evals + builds,
        "caught-panic count {} below injected {}",
        m.worker_panics,
        evals + builds
    );
    // The eval panic errored its batch with typed lines the clients saw
    // (the build panic did not: its retry succeeded).
    assert!(
        internal_errors >= 1,
        "no client observed a typed internal error"
    );
    assert!(m.errored >= internal_errors, "error metric undercounts");

    // Post-fault health: no poisoned lock anywhere on the path — the
    // preloaded key (whose build panicked and retried during churn) still
    // answers, bitwise-identical to the fault-free run.
    let again = service.client().predict(preloaded_req.clone()).unwrap();
    assert_eq!(
        again.cpi.unwrap().to_bits(),
        baseline_bits[&answer_key(&preloaded_req)],
        "post-chaos answer drifted"
    );
}
