//! Contention smoke for the sharded run queues: many workers, many client
//! threads, interleaved warm/cold traffic — answers must stay bitwise
//! identical to a single-worker service, per-thread reply order must hold,
//! and the service must drain and shut down cleanly.
//!
//! This is the CI "contention smoke" leg (release build: `--workers 8
//! --precompute-workers 4`); debug runs use the same shape with the same
//! assertions, just slower.

use std::time::Duration;

use concorde_suite::prelude::*;
use concorde_suite::serve::BatchScratch;

fn tiny_service_parts() -> (ConcordePredictor, ReproProfile) {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 2;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 16,
        seed: 11,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    (model, profile)
}

/// A mixed request set: two workloads × three archs, so batches group and
/// split across several feature stores and shard-stealing has real spill.
fn request_set() -> Vec<PredictRequest> {
    let mut reqs = Vec::new();
    let mut id = 0u64;
    for w in ["S5", "O1"] {
        for arch in [
            ArchSpec::base("n1"),
            {
                let mut s = ArchSpec::base("n1");
                s.rob = Some(160);
                s
            },
            ArchSpec::base("big"),
        ] {
            reqs.push(PredictRequest {
                id,
                workload: w.into(),
                arch,
                ..PredictRequest::default()
            });
            id += 1;
        }
    }
    reqs
}

#[test]
fn sharded_queue_contention_is_bitwise_deterministic() {
    let (model, profile) = tiny_service_parts();

    // Golden answers from a deliberately contention-free service: one
    // worker, one shard, no stealing possible.
    let golden: Vec<u64> = {
        let service = PredictionService::start(
            model.clone(),
            profile.clone(),
            ServeConfig {
                workers: 1,
                precompute_workers: 1,
                max_batch: 16,
                batch_deadline: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let resps = service
            .client()
            .predict_many(request_set())
            .expect("golden batch");
        resps
            .iter()
            .map(|r| {
                r.cpi
                    .unwrap_or_else(|| panic!("golden errored: {:?}", r.error))
                    .to_bits()
            })
            .collect()
    };

    // The contended service: 8 workers draining 8 shards with stealing,
    // 4 precompute threads racing the cold misses.
    let service = PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 8,
            precompute_workers: 4,
            max_batch: 16,
            batch_deadline: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );

    const THREADS: usize = 8;
    const ROUNDS: usize = 12;
    let base = request_set();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let client = service.client();
            let golden = &golden;
            let base = &base;
            scope.spawn(move || {
                let mut reqs: Vec<PredictRequest> = Vec::new();
                let mut out: Vec<PredictResponse> = Vec::new();
                let mut scratch = BatchScratch::default();
                for round in 0..ROUNDS {
                    // Each thread rotates the request order differently per
                    // round so shards fill unevenly and workers must steal.
                    reqs.clear();
                    reqs.extend_from_slice(base);
                    reqs.rotate_left((t + round) % base.len());
                    let order: Vec<u64> = reqs.iter().map(|r| r.id).collect();
                    if t % 2 == 0 {
                        // Half the threads drive the zero-alloc slot path…
                        client
                            .predict_batch_into(&mut reqs, &mut scratch, &mut out)
                            .expect("predict_batch_into");
                    } else {
                        // …the other half the owned mpsc-compat API.
                        out = client
                            .predict_many(std::mem::take(&mut reqs))
                            .expect("predict_many");
                    }
                    assert_eq!(out.len(), order.len());
                    for (resp, &id) in out.iter().zip(&order) {
                        assert_eq!(resp.id, id, "reply order broke under contention");
                        let cpi = resp.cpi.unwrap_or_else(|| {
                            panic!("id {} errored under contention: {:?}", resp.id, resp.error)
                        });
                        assert_eq!(
                            cpi.to_bits(),
                            golden[id as usize],
                            "id {id} diverged from the single-worker golden answer"
                        );
                    }
                }
            });
        }
    });

    // Everything submitted was answered and the shards drained.
    let stats = service.stats();
    let expected = (THREADS * ROUNDS * base.len()) as u64;
    assert!(
        stats.metrics.completed >= expected,
        "completed {} < expected {expected}",
        stats.metrics.completed
    );
    assert_eq!(stats.metrics.errored, 0);
    assert_eq!(stats.metrics.queue_depth, 0, "queue must drain");
    assert_eq!(stats.metrics.parked, 0, "no requests may stay parked");
    // Dropping the service here is the clean-shutdown assertion: all 8
    // workers and 4 pool threads must exit without stranding a job.
}
