//! Observability and QoS: the Prometheus `/metrics` exposition (validated
//! by a strict parser), EDF miss scheduling, shed→upgrade notification, and
//! the schema-version pin.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::mpsc::TryRecvError;
use std::time::Duration;

use concorde_suite::core::schema::SCHEMA_VERSION;
use concorde_suite::prelude::*;
use concorde_suite::serve::MetricsSnapshot;

/// Small but real model + profile shared by the service tests (the same
/// fixture `tests/serving_shed.rs` uses).
fn tiny_service_parts() -> (ConcordePredictor, ReproProfile) {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 1;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 8,
        seed: 23,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    (model, profile)
}

/// A cold-region length big enough that its build outlasts everything the
/// test does while it runs.
fn long_len() -> u32 {
    if cfg!(debug_assertions) {
        16_384
    } else {
        131_072
    }
}

fn small_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 1,
        batch_deadline: Duration::from_micros(1),
        precompute_workers: 1,
        ..ServeConfig::default()
    }
}

/// Polls the metrics snapshot until `ready` holds (120 s cap).
fn wait_for(service: &PredictionService, what: &str, ready: impl Fn(&MetricsSnapshot) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        if ready(&service.metrics()) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never reached: {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// A strict exposition-format parser: the test-side re-implementation of the
// invariants `PromWriter` promises structurally.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{k="v",...} value` (labels optional), unescaping label
/// values; panics with the offending line on any malformation.
fn parse_sample(line: &str) -> Sample {
    let (name, rest) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .unwrap_or_else(|| panic!("unclosed labels: {line}"));
            assert!(open < close, "bad label braces: {line}");
            (&line[..open], {
                let labels = &line[open + 1..close];
                let value = line[close + 1..].trim();
                (labels, value)
            })
        }
        None => {
            let (name, value) = line
                .split_once(' ')
                .unwrap_or_else(|| panic!("sample without value: {line}"));
            (name, ("", value.trim()))
        }
    };
    let (label_text, value_text) = rest;
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.is_empty(),
        "bad metric name in: {line}"
    );
    let mut labels = Vec::new();
    let mut chars = label_text.chars().peekable();
    while chars.peek().is_some() {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        assert!(!key.is_empty(), "empty label key in: {line}");
        assert_eq!(
            chars.next(),
            Some('"'),
            "label value must be quoted: {line}"
        );
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => panic!("bad escape {other:?} in: {line}"),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => panic!("unterminated label value in: {line}"),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') | None => {}
            other => panic!("expected `,` between labels, got {other:?} in: {line}"),
        }
    }
    let value = if value_text == "+Inf" {
        f64::INFINITY
    } else {
        value_text
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value in: {line}"))
    };
    Sample {
        name: name.to_string(),
        labels,
        value,
    }
}

/// The base family a sample belongs to under `types`: the sample name
/// itself for counters/gauges, the `_bucket`/`_sum`/`_count`-stripped
/// prefix for histograms.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    if types.contains_key(name) {
        return name;
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(prefix) = name.strip_suffix(suffix) {
            if types.get(prefix).map(String::as_str) == Some("histogram") {
                return prefix;
            }
        }
    }
    panic!("sample `{name}` belongs to no `# TYPE`d family");
}

/// Validates one whole exposition document against the format invariants
/// and returns the family → type map. Panics (test failure) on:
/// - a family `# TYPE`d or `# HELP`ed more than once, or samples without one
/// - non-finite or negative counter/bucket/count values
/// - histogram buckets out of `le` order, non-cumulative, or missing `+Inf`
/// - `_count` disagreeing with the `+Inf` bucket, or `_sum`/`_count` missing
fn validate_exposition(text: &str) -> HashMap<String, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashMap<String, ()> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "exposition has a blank line");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _docs) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("HELP without docs: {line}"));
            assert!(
                helps.insert(name.to_string(), ()).is_none(),
                "family `{name}` HELPed twice"
            );
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("TYPE without a type: {line}"));
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown type `{kind}` for `{name}`"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "family `{name}` TYPEd twice"
            );
        } else if let Some(rest) = line.strip_prefix('#') {
            panic!("unknown comment line: #{rest}");
        } else {
            samples.push(parse_sample(line));
        }
    }
    assert!(!samples.is_empty(), "exposition carries no samples");

    // Histogram series accumulate per (family, labels-minus-le).
    #[derive(Default)]
    struct HistSeries {
        buckets: Vec<(f64, f64)>, // (le, cumulative count) in document order
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut hist: HashMap<String, HistSeries> = HashMap::new();
    for s in &samples {
        let family = family_of(&s.name, &types).to_string();
        let kind = types[&family].as_str();
        assert!(s.value.is_finite(), "non-finite sample value on {}", s.name);
        match kind {
            "counter" => assert!(s.value >= 0.0, "negative counter {}", s.name),
            "gauge" => {}
            "histogram" => {
                let mut key_labels: Vec<(String, String)> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                key_labels.sort();
                let key = format!("{family}{key_labels:?}");
                let series = hist.entry(key).or_default();
                assert!(s.value >= 0.0, "negative histogram sample {}", s.name);
                if s.name.ends_with("_bucket") {
                    let le = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| {
                            if v == "+Inf" {
                                f64::INFINITY
                            } else {
                                v.parse().unwrap_or_else(|_| panic!("bad le `{v}`"))
                            }
                        })
                        .unwrap_or_else(|| panic!("bucket without le: {}", s.name));
                    series.buckets.push((le, s.value));
                } else if s.name.ends_with("_sum") {
                    assert!(series.sum.replace(s.value).is_none(), "{} twice", s.name);
                } else {
                    assert!(series.count.replace(s.value).is_none(), "{} twice", s.name);
                }
            }
            other => unreachable!("{other}"),
        }
    }
    for (key, series) in &hist {
        assert!(
            !series.buckets.is_empty(),
            "{key}: histogram without buckets"
        );
        for w in series.buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "{key}: le bounds not increasing");
            assert!(w[0].1 <= w[1].1, "{key}: buckets not cumulative");
        }
        let (last_le, inf_count) = *series.buckets.last().unwrap();
        assert!(last_le.is_infinite(), "{key}: no +Inf bucket");
        let count = series.count.unwrap_or_else(|| panic!("{key}: no _count"));
        let sum = series.sum.unwrap_or_else(|| panic!("{key}: no _sum"));
        assert_eq!(count, inf_count, "{key}: _count != +Inf bucket");
        assert!(sum >= 0.0, "{key}: negative _sum");
        if count == 0.0 {
            assert_eq!(sum, 0.0, "{key}: observations without a count");
        }
    }
    types
}

/// One raw HTTP/1.1 exchange against the metrics listener; returns
/// `(status_line, headers, body)`.
fn http_get(addr: std::net::SocketAddr, request: &str) -> (String, String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics listener");
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read full response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

#[test]
fn http_metrics_endpoint_serves_valid_exposition() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(model, profile, small_config());
    let client = service.client();

    // Traffic in both classes, a repeat (cache hit), and one error, so the
    // scrape below exercises labelled series with real counts.
    let exact = client
        .predict(PredictRequest::new(1, "S5", ArchSpec::base("n1")))
        .unwrap();
    assert!(exact.cpi.unwrap() > 0.0);
    let hit = client
        .predict(PredictRequest::new(2, "S5", ArchSpec::base("n1")))
        .unwrap();
    assert!(hit.cached);
    let mut batch = PredictRequest::new(3, "O1", ArchSpec::base("big"));
    batch.class = RequestClass::Batch;
    client.predict(batch).unwrap();
    let failed = client
        .predict(PredictRequest::new(4, "NOPE", ArchSpec::base("n1")))
        .unwrap();
    assert!(failed.error.is_some());

    let metrics = service.serve_metrics("127.0.0.1:0").expect("bind /metrics");
    let addr = metrics.addr();
    let (status, headers, body) = http_get(addr, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 200 OK", "{status}");
    assert!(
        headers.contains("text/plain; version=0.0.4"),
        "exposition content type missing: {headers}"
    );
    let content_length: usize = headers
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .unwrap();
    assert_eq!(content_length, body.len());

    // The document passes the strict format validator...
    let types = validate_exposition(&body);

    // ...and carries every family the engine promises, correctly typed.
    let required = [
        ("concorde_build_info", "gauge"),
        ("concorde_requests_submitted_total", "counter"),
        ("concorde_requests_rejected_total", "counter"),
        ("concorde_responses_total", "counter"),
        ("concorde_errors_total", "counter"),
        ("concorde_shed_total", "counter"),
        ("concorde_upgrades_total", "counter"),
        ("concorde_schema_mismatch_total", "counter"),
        ("concorde_coalesced_total", "counter"),
        ("concorde_precomputes_total", "counter"),
        ("concorde_shed_build_skips_total", "counter"),
        ("concorde_batches_total", "counter"),
        ("concorde_busy_rejected_total", "counter"),
        ("concorde_cache_hits_total", "counter"),
        ("concorde_cache_misses_total", "counter"),
        ("concorde_cache_evictions_total", "counter"),
        ("concorde_cache_bytes", "gauge"),
        ("concorde_cache_stores", "gauge"),
        ("concorde_queue_depth", "gauge"),
        ("concorde_queue_depth_max", "gauge"),
        ("concorde_parked_requests", "gauge"),
        ("concorde_miss_backlog", "gauge"),
        ("concorde_inflight_builds", "gauge"),
        ("concorde_active_connections", "gauge"),
        ("concorde_build_ewma_seconds", "gauge"),
        ("concorde_request_latency_seconds", "histogram"),
        ("concorde_queue_wait_seconds", "histogram"),
        ("concorde_batch_size", "histogram"),
        ("concorde_store_build_seconds", "histogram"),
    ];
    for (family, kind) in required {
        assert_eq!(
            types.get(family).map(String::as_str),
            Some(kind),
            "family {family} missing or mistyped"
        );
    }

    // Per-class labelling is live: both classes appear on the latency
    // histogram, and the interactive count covers the 3 interactive
    // requests above (2 predictions + 1 error), batch exactly 1.
    for (class, count) in [("interactive", 3), ("batch", 1)] {
        assert!(
            body.contains(&format!(
                "concorde_request_latency_seconds_count{{class=\"{class}\"}} {count}"
            )),
            "per-class latency count missing for {class}:\n{body}"
        );
    }
    assert!(body.contains(&format!("schema_version=\"{SCHEMA_VERSION}\"")));
    assert!(body.contains("\nconcorde_errors_total 1\n"));

    // The legacy wire stats no longer drift beside the histograms: avg/max
    // are derived from the same per-class histograms the scrape renders.
    let snap = service.metrics();
    assert!(snap.avg_latency_us > 0.0);
    assert!(snap.max_latency_us as f64 >= snap.avg_latency_us);

    // Routing: wrong path 404s, wrong method 405s, and the listener
    // survives both to serve the next scrape.
    let (status, _, _) = http_get(addr, "GET /nope HTTP/1.1\r\nHost: test\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _, _) = http_get(addr, "POST /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
    let (status, _, body) = http_get(addr, "GET /metrics?x=1 HTTP/1.1\r\nHost: test\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 200 OK", "query params must be ignored");
    validate_exposition(&body);
}

#[test]
fn stalled_scrape_client_honors_configured_read_timeout() {
    // A scraper that connects and never sends its request must be cut off
    // by `--read-timeout-ms`, not the built-in 2 s fallback: the metrics
    // accept loop is single-threaded, so the stall window is exactly how
    // long one bad client can starve liveness probes.
    let (model, profile) = tiny_service_parts();
    let cfg = ServeConfig {
        read_timeout: Some(Duration::from_millis(100)),
        ..small_config()
    };
    let service = PredictionService::start(model, profile, cfg);
    let metrics = service.serve_metrics("127.0.0.1:0").expect("bind /metrics");
    let addr = metrics.addr();

    // Open the stalled connection first so the accept loop picks it up and
    // blocks in its read. Keep the socket alive for the whole test.
    let stalled = std::net::TcpStream::connect(addr).expect("connect stalled client");
    let t0 = std::time::Instant::now();
    let (status, _, _) = http_get(addr, "GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
    let elapsed = t0.elapsed();
    assert_eq!(status, "HTTP/1.1 200 OK", "probe must still be answered");
    // The probe waited behind at most the stalled client's 100 ms timeout.
    // Far below the 2 s fallback ⇒ the configured value was honored (with
    // generous headroom for a slow CI machine).
    assert!(
        elapsed < Duration::from_millis(1500),
        "probe took {elapsed:?}; stalled client held the loop past the \
         configured 100 ms read timeout"
    );
    drop(stalled);
}

#[test]
fn edf_builds_tight_deadline_key_before_earlier_parked_batch_key() {
    let (model, profile) = tiny_service_parts();
    let mut cfg = small_config();
    // The interactive SLO supplies the EDF deadline. The EWMA is never
    // seeded in this test (no build completes before the parks below), so
    // the conservative shed bootstrap keeps everything parked — the SLO
    // acts purely as a scheduling deadline here.
    cfg.class_slo
        .set(RequestClass::Interactive, Duration::from_millis(50));
    let service = PredictionService::start(model, profile, cfg);
    let client = service.client();

    // Pin the single pool worker, and wait until it has POPPED the pinning
    // build (backlog empty, one build in flight) so everything below queues
    // behind it deterministically.
    let mut pin = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    pin.len = long_len();
    pin.class = RequestClass::Batch; // no SLO: the pin itself has no deadline
    let pin_rx = client.submit(pin).unwrap();
    wait_for(&service, "pool picked up the pinning build", |m| {
        m.miss_backlog == 0 && m.inflight_builds == 1
    });

    // Batch key B parks FIRST, with TWO waiters and a long build: the old
    // most-parked-first policy (and plain FIFO) would both build it next.
    let mut b = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    b.start = 4_096;
    b.len = long_len();
    b.class = RequestClass::Batch;
    let b_rx = client.submit(b.clone()).unwrap();
    wait_for(&service, "batch key registered", |m| m.miss_backlog == 1);
    b.id = 2;
    let b_rx2 = client.submit(b).unwrap();
    wait_for(&service, "second batch waiter coalesced", |m| {
        m.coalesced == 1
    });

    // Interactive key I parks SECOND with one waiter and a short build; its
    // class SLO gives it the only effective deadline in the queue.
    let mut i = PredictRequest::new(3, "C1", ArchSpec::base("n1"));
    i.start = 8_192;
    i.len = 512;
    let i_rx = client.submit(i).unwrap();
    wait_for(&service, "interactive key registered", |m| {
        m.miss_backlog == 2
    });

    let _ = pin_rx.recv().unwrap();
    // EDF: the freed worker must pick I (has a deadline) over B (none),
    // despite B parking earlier with more waiters and a smaller seq.
    let i_resp = i_rx.recv().unwrap();
    assert!(!i_resp.approx && !i_resp.cached && i_resp.error.is_none());
    assert!(
        matches!(b_rx.try_recv(), Err(TryRecvError::Empty)),
        "batch key was built before the deadline-carrying interactive key"
    );
    let b_resp = b_rx.recv().unwrap();
    assert!(!b_resp.approx, "nothing may shed with an unseeded EWMA");
    let _ = b_rx2.recv().unwrap();
    assert_eq!(service.metrics().shed, 0);
}

#[test]
fn notify_shed_request_receives_exact_upgrade_on_same_channel() {
    let (model, profile) = tiny_service_parts();
    let direct_model = model.clone();
    let service = PredictionService::start(model, profile.clone(), small_config());
    let client = service.client();

    // Seed the EWMA (first-ever build never sheds), then pin the pool.
    let mut seed = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    seed.deadline_ms = Some(0);
    assert!(!client.predict(seed).unwrap().approx);
    let mut long = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    long.start = 4_096;
    long.len = long_len();
    let long_rx = client.submit(long).unwrap();

    // A zero-deadline cold notify request: shed now, upgraded later.
    let mut tight = PredictRequest::new(2, "C1", ArchSpec::base("big"));
    tight.start = 8_192;
    tight.deadline_ms = Some(0);
    tight.notify = true;
    let rx = client.submit(tight.clone()).unwrap();
    let first = rx.recv().unwrap();
    assert!(first.approx, "backlogged zero-deadline miss must shed");
    assert_eq!(first.reason.as_deref(), Some("shed"));
    assert!(!first.is_upgrade());

    // The SAME channel then delivers the pushed upgrade once the store
    // lands: typed, exact, and bitwise equal to the direct model answer.
    let up = rx.recv().expect("upgrade line must follow a notify shed");
    assert!(up.is_upgrade());
    assert_eq!(up.id, 2);
    assert!(!up.approx && !up.cached && up.error.is_none());
    assert!(up.micros >= first.micros, "upgrade spans the full wait");
    let arch = tight.arch.resolve().unwrap();
    let spec = by_id("C1").unwrap();
    let warm_start = tight.start - profile.warmup_len as u64;
    let full = generate_region(
        &spec,
        0,
        warm_start,
        profile.warmup_len + profile.region_len,
    );
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile);
    assert_eq!(
        up.cpi.unwrap().to_bits(),
        direct_model.predict(&store, &arch).to_bits(),
        "upgrade must carry the exact model prediction"
    );

    let _ = long_rx.recv().unwrap();
    let m = service.metrics();
    assert_eq!(m.shed, 1);
    assert_eq!(m.upgrades, 1);
    assert_eq!(m.errored, 0);
}

#[test]
fn tcp_notify_shed_pushes_upgrade_line() {
    let (model, profile) = tiny_service_parts();
    let service = Box::leak(Box::new(PredictionService::start(
        model,
        profile,
        small_config(),
    )));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service: &PredictionService = service;
    std::thread::spawn(move || {
        let _ = service.serve_tcp(listener);
    });
    let client = service.client();

    // Seed the EWMA and pin the pool from the in-process side; the wire
    // client then only sees the notify round trip under test.
    let mut seed = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    seed.deadline_ms = Some(0);
    assert!(!client.predict(seed).unwrap().approx);
    let mut long = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    long.start = 4_096;
    long.len = long_len();
    let long_rx = client.submit(long).unwrap();

    let mut tcp = TcpClient::connect(&addr).expect("connect");
    let mut tight = PredictRequest::new(7, "C1", ArchSpec::base("n1"));
    tight.start = 8_192;
    tight.deadline_ms = Some(0);
    tight.notify = true;
    let first = tcp.predict(&tight).unwrap();
    assert!(
        first.approx,
        "wire request must shed like an in-process one"
    );
    assert_eq!(first.id, 7);

    // The pushed `{"type":"upgrade"}` line arrives on the same connection.
    let up = tcp.wait_upgrade().expect("pushed upgrade line");
    assert!(up.is_upgrade());
    assert_eq!(up.id, 7);
    assert!(up.cpi.unwrap() > 0.0 && !up.approx);

    // The TCP metrics command serves the same strict exposition the HTTP
    // endpoint does, with the upgrade on the books.
    let text = tcp.metrics_text().unwrap();
    let types = validate_exposition(&text);
    assert_eq!(
        types.get("concorde_upgrades_total").map(String::as_str),
        Some("counter")
    );
    assert!(text.contains("\nconcorde_upgrades_total 1\n"), "{text}");
    assert!(text.contains("concorde_shed_total{class=\"interactive\"} 1"));

    let _ = long_rx.recv().unwrap();
}

#[test]
fn schema_version_pin_mismatch_is_a_typed_error() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(model, profile, small_config());
    let client = service.client();

    // A wrong pin gets the typed error — no prediction, no store build.
    let mut pinned = PredictRequest::new(1, "S5", ArchSpec::base("n1"));
    pinned.schema_version = Some(SCHEMA_VERSION + 1);
    let resp = client.predict(pinned).unwrap();
    assert_eq!(resp.kind.as_deref(), Some("error"));
    assert_eq!(resp.reason.as_deref(), Some("schema_mismatch"));
    assert!(resp.cpi.is_none());
    let msg = resp.error.expect("mismatch carries a message");
    assert!(
        msg.contains(&format!("v{SCHEMA_VERSION}")),
        "message must name the served version: {msg}"
    );
    let m = service.metrics();
    assert_eq!(m.schema_mismatches, 1);
    assert_eq!(m.cache_misses, 0, "a rejected pin must not build anything");

    // The matching pin is answered normally.
    let mut ok = PredictRequest::new(2, "S5", ArchSpec::base("n1"));
    ok.schema_version = Some(SCHEMA_VERSION);
    let resp = client.predict(ok).unwrap();
    assert!(resp.kind.is_none() && resp.error.is_none());
    assert!(resp.cpi.unwrap() > 0.0);
    assert_eq!(service.metrics().schema_mismatches, 1);
}
