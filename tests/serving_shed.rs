//! SLO-aware miss load-shedding: the shed decision function, the degraded
//! analytic-answer path, and the exact-vs-approximate answer contract.

use std::time::Duration;

use concorde_suite::prelude::*;
use concorde_suite::serve::shed_decision;
use proptest::prelude::*;

/// Small but real model + profile shared by the service tests.
fn tiny_service_parts() -> (ConcordePredictor, ReproProfile) {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 1;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 8,
        seed: 23,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    (model, profile)
}

/// A cold-region length big enough that its build outlasts everything the
/// test does while it runs (matches the convention in tests/serving.rs).
fn long_len() -> u32 {
    if cfg!(debug_assertions) {
        16_384
    } else {
        131_072
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The shed decision is monotone: growing the backlog or the observed
    /// build latency never flips shed→wait, and tightening the effective
    /// deadline never flips shed→wait. (0 maps to "not configured" for the
    /// two optional limits.)
    #[test]
    fn shed_decision_is_monotone(
        backlog in 0usize..10_000,
        ewma in 0u64..100_000_000,
        slo_raw in 0u64..100_000_000,
        deadline_raw in 0u64..100_000_000,
        backlog_extra in 0usize..10_000,
        ewma_extra in 0u64..100_000_000,
        tighten_num in 0u64..1_000,
    ) {
        let slo = (slo_raw > 0).then_some(slo_raw);
        let deadline = (deadline_raw > 0).then_some(deadline_raw);
        let base = shed_decision(backlog, ewma, slo, deadline);

        // Monotone in backlog and EWMA (more load never un-sheds).
        prop_assert!(shed_decision(backlog + backlog_extra, ewma, slo, deadline) >= base);
        prop_assert!(shed_decision(backlog, ewma.saturating_add(ewma_extra), slo, deadline) >= base);

        // Monotone in urgency: a tighter limit on the SAME channel the base
        // decision used never flips shed→wait.
        let tighter = |limit: u64| limit.saturating_mul(tighten_num) / 1_000;
        if let Some(d) = deadline {
            prop_assert!(shed_decision(backlog, ewma, slo, Some(tighter(d))) >= base);
        } else if let Some(s) = slo {
            prop_assert!(shed_decision(backlog, ewma, Some(tighter(s)), None) >= base);
        }

        // No limit configured → never shed; no observed latency → never shed.
        prop_assert!(!shed_decision(backlog, ewma, None, None));
        prop_assert!(!shed_decision(backlog, 0, slo, deadline));
    }
}

#[test]
fn direct_min_bound_matches_store_min_bound_bitwise() {
    // The serving shed path computes the min-bound WITHOUT building a
    // feature store; for an architecture on the store's grid the two
    // routes must agree bitwise — the degraded answer is the same number
    // the full store would have bounded with.
    let profile = ReproProfile::quick();
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    for arch in [MicroArch::arm_n1(), MicroArch::big_core()] {
        let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile);
        let via_store = store.min_bound_cpi(&arch);
        let direct = analytic_min_bound_cpi(w, r, &arch, &profile);
        assert_eq!(
            via_store.to_bits(),
            direct.to_bits(),
            "store {via_store} vs direct {direct}"
        );
    }
}

#[test]
fn shed_answers_are_approx_then_exact_once_the_store_lands() {
    let (model, profile) = tiny_service_parts();
    let direct_model = model.clone();
    let service = PredictionService::start(
        model,
        profile.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 1,
            batch_deadline: Duration::from_micros(1),
            precompute_workers: 1,
            ..ServeConfig::default()
        },
    );
    let client = service.client();

    // Seed the build-latency EWMA: the first-ever build is never shed
    // (conservative bootstrap), whatever its deadline.
    let mut seed = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    seed.deadline_ms = Some(0);
    let seeded = client.predict(seed).unwrap();
    assert!(
        !seeded.approx,
        "nothing may shed before a build latency is observed"
    );
    assert!(service.metrics().build_ewma_us > 0);

    // Pin the single pool worker on a long build so the backlog is real.
    let mut long = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    long.start = 4_096;
    long.len = long_len();
    let long_rx = client.submit(long).unwrap();

    // A zero-deadline cold request behind that backlog must shed: an
    // immediate answer carrying the flagged analytic min-bound, bitwise
    // equal to the direct estimator over the same region/warmup convention.
    let mut tight = PredictRequest::new(2, "C1", ArchSpec::base("big"));
    tight.start = 8_192;
    tight.deadline_ms = Some(0);
    let shed_resp = client.predict(tight.clone()).unwrap();
    assert!(shed_resp.approx, "backlogged zero-deadline miss must shed");
    assert_eq!(shed_resp.reason.as_deref(), Some("shed"));
    assert!(!shed_resp.cached);
    let arch = tight.arch.resolve().unwrap();
    let spec = by_id("C1").unwrap();
    let warm_start = tight.start - profile.warmup_len as u64;
    let full = generate_region(
        &spec,
        0,
        warm_start,
        profile.warmup_len + profile.region_len,
    );
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let expected_bound = analytic_min_bound_cpi(w, r, &arch, &profile);
    assert_eq!(
        shed_resp.cpi.unwrap().to_bits(),
        expected_bound.to_bits(),
        "shed answer must be the analytic min-bound"
    );
    assert_eq!(service.metrics().shed, 1);

    // Shedding must NOT have cancelled the build: the exact store lands,
    // and the same key then answers exactly (approx never on a hit) — even
    // for a zero-deadline request.
    let _ = long_rx.recv().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let m = service.metrics();
        if m.inflight_builds == 0 && m.miss_backlog == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "shed key's build never landed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let exact = client.predict(tight.clone()).unwrap();
    assert!(exact.cached, "the shed key's store must have landed");
    assert!(!exact.approx, "approx must never appear on a cache hit");
    assert!(exact.reason.is_none());
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile);
    assert_eq!(
        exact.cpi.unwrap().to_bits(),
        direct_model.predict(&store, &arch).to_bits(),
        "post-shed answer must be the exact model prediction"
    );

    // The degraded and exact answers for the key are both on record; the
    // gap between them is the price of the shed, not an error.
    assert!(exact.cpi.unwrap() > 0.0 && shed_resp.cpi.unwrap() > 0.0);
    let m = service.metrics();
    assert_eq!(m.shed, 1, "the hit must not shed again");
    assert_eq!(m.parked, 0);
    assert_eq!(m.errored, 0);
}

#[test]
fn server_slo_sheds_requests_without_their_own_deadline() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 2,
            max_batch: 1,
            batch_deadline: Duration::from_micros(1),
            precompute_workers: 1,
            miss_slo: Some(Duration::from_millis(1)),
            ..ServeConfig::default()
        },
    );
    let client = service.client();

    // Seed the EWMA with a LONG build, so 1ms of SLO is far below one
    // projected build wait afterwards.
    let mut seed = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    seed.len = long_len();
    let seeded = client.predict(seed).unwrap();
    assert!(!seeded.approx, "first-ever build must not shed");

    // Pin the pool again…
    let mut long = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    long.start = 4_096;
    long.len = long_len();
    let long_rx = client.submit(long).unwrap();

    // …then a plain request (no deadline_ms) on a cold key inherits the
    // server SLO and sheds.
    let mut plain = PredictRequest::new(2, "C1", ArchSpec::base("n1"));
    plain.start = 8_192;
    plain.len = 512;
    let resp = client.predict(plain).unwrap();
    assert!(resp.approx, "server SLO must shed backlogged plain misses");
    assert_eq!(resp.reason.as_deref(), Some("shed"));

    // A request that opts out with a huge deadline parks instead.
    let mut patient = PredictRequest::new(3, "C1", ArchSpec::base("big"));
    patient.start = 16_384;
    patient.len = 512;
    patient.deadline_ms = Some(3_600_000);
    let patient_resp = client.predict(patient).unwrap();
    assert!(
        !patient_resp.approx,
        "a roomy per-request deadline overrides the server SLO"
    );
    let _ = long_rx.recv().unwrap();
    assert_eq!(service.stats().miss_slo_ms, Some(1));
}

#[test]
fn cold_storm_is_backstopped_and_shed_answers_are_memoized() {
    // A sustained fully-shed cold storm must not grow the pool queue
    // without bound: past 32 outstanding builds per pool worker, a group
    // nobody waits on skips registering its (speculative) build. And a
    // storm hammering ONE key must pay the analytic computation once —
    // repeats are served from the per-key memo bitwise identically.
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 2,
            max_batch: 1,
            batch_deadline: Duration::from_micros(1),
            precompute_workers: 1,
            ..ServeConfig::default()
        },
    );
    let client = service.client();

    // Seed the EWMA, then pin the single pool worker. Full-length pin in
    // BOTH profiles: the storm below runs ~40 shed computations (~1s in
    // debug), and the backlog assertions need the pin to outlast them all.
    client
        .predict(PredictRequest::new(0, "S5", ArchSpec::base("n1")))
        .unwrap();
    let mut long = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    long.start = 4_096;
    long.len = 131_072;
    let long_rx = client.submit(long).unwrap();

    // Storm: 40 distinct zero-deadline cold keys. Tiny starts keep each
    // key's warmup (and so its shed answer and speculative build) cheap,
    // so the whole storm lands while the pool is still pinned. The first
    // ~31 register speculative builds; once the backlog passes the
    // 32-per-worker backstop the rest are answered without queueing
    // anything.
    for i in 0..40u64 {
        let mut req = PredictRequest::new(100 + i, "C1", ArchSpec::base("n1"));
        req.start = i;
        req.len = 512;
        req.deadline_ms = Some(0);
        let resp = client.predict(req).unwrap();
        assert!(resp.approx, "storm request {i} must shed");
    }
    assert!(
        matches!(
            long_rx.try_recv(),
            Err(std::sync::mpsc::TryRecvError::Empty)
        ),
        "pin build finished mid-storm — the backlog assertions below lost their premise"
    );
    let m = service.metrics();
    assert!(
        m.shed_build_skips > 0,
        "the backstop must have skipped speculative builds"
    );
    assert!(
        m.inflight_builds <= 33,
        "pool backlog exceeded the backstop: {}",
        m.inflight_builds
    );

    // Memoization: hammer one already-shed key; all answers bitwise equal.
    let mut repeat = PredictRequest::new(500, "C1", ArchSpec::base("n1"));
    repeat.start = 0;
    repeat.len = 512;
    repeat.deadline_ms = Some(0);
    let first = client.predict(repeat.clone()).unwrap();
    assert!(first.approx);
    let first_bits = first.cpi.unwrap().to_bits();
    for _ in 0..5 {
        let again = client.predict(repeat.clone()).unwrap();
        assert!(again.approx);
        assert_eq!(again.cpi.unwrap().to_bits(), first_bits);
    }
    assert!(
        matches!(
            long_rx.try_recv(),
            Err(std::sync::mpsc::TryRecvError::Empty)
        ),
        "pin build finished mid-hammer — the memo assertions above lost their premise"
    );

    // Drain: the long build plus every registered speculative build lands.
    let _ = long_rx.recv().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let m = service.metrics();
        if m.inflight_builds == 0 && m.miss_backlog == 0 && m.parked == 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "storm never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(service.metrics().errored, 0);
}

#[test]
fn stats_report_backlog_and_parked_as_a_consistent_snapshot() {
    let (model, profile) = tiny_service_parts();
    let service = PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 2,
            max_batch: 1,
            batch_deadline: Duration::from_micros(1),
            precompute_workers: 1,
            ..ServeConfig::default()
        },
    );
    let client = service.client();

    // Pin the single pool worker on A, then queue B (1 waiter) and C
    // (3 coalesced waiters on one key) behind it.
    let mut a = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    a.len = long_len();
    let a_rx = client.submit(a).unwrap();
    // Wait until the pool has *popped* A (queue empty, one build in
    // flight): B and C below then deterministically queue behind it —
    // otherwise the pool could pick hot C first and finish it immediately.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let m = service.metrics();
        if m.miss_backlog == 0 && m.inflight_builds == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pool never picked up the pinning build"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut b = PredictRequest::new(1, "O1", ArchSpec::base("n1"));
    b.start = 65_536;
    b.len = 512;
    let b_rx = client.submit(b).unwrap();
    let c_rxs: Vec<_> = (0..3u64)
        .map(|i| {
            let mut c = PredictRequest::new(10 + i, "C1", ArchSpec::base("n1"));
            c.start = 65_536;
            c.len = 512;
            client.submit(c).unwrap()
        })
        .collect();

    // While A builds: 5 parked jobs (A's own + B + C×3) and 2 queued
    // builds (B, C) — and the two gauges must come from ONE lock-consistent
    // snapshot, so we must observe exactly this pair, never (5, 0) or
    // (0, 2) shear. Poll for the steady state, then re-assert the pair
    // within single snapshots.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let steady = loop {
        let m = service.metrics();
        if m.parked == 5 && m.miss_backlog == 2 {
            break m;
        }
        // If A already finished the test lost its window; only possible on
        // a wildly slow submit path.
        assert!(
            std::time::Instant::now() < deadline,
            "never observed the pinned steady state (last: parked {} backlog {})",
            m.parked,
            m.miss_backlog
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(steady.inflight_builds, 3, "A running + B + C registered");
    for _ in 0..10 {
        let stats = service.stats();
        let (p, q) = (stats.metrics.parked, stats.metrics.miss_backlog);
        // Every snapshot while A builds shows a consistent pair: all
        // parked jobs' builds are accounted either queued or running.
        assert!(
            (p, q) == (5, 2),
            "inconsistent snapshot: parked {p}, backlog {q}"
        );
    }

    // Drain completely: afterwards every gauge in one snapshot is zero.
    let _ = a_rx.recv().unwrap();
    let _ = b_rx.recv().unwrap();
    for rx in c_rxs {
        let _ = rx.recv().unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let m = service.metrics();
        if m.parked == 0 && m.miss_backlog == 0 && m.inflight_builds == 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "drain never settled");
        std::thread::sleep(Duration::from_millis(5));
    }
}
