//! Deterministic serving stress/soak test: seeded multi-connection churn
//! over a hot/cold key mix with a byte budget tight enough to force
//! preload-evict-rebuild cycles, connections dropping mid-batch, and
//! abandoned in-flight requests. After the churn drains, the engine must be
//! clean: no stranded parked jobs, no queued builds, every submission
//! answered, bitwise-stable exact answers across rebuilds, and
//! monotonic/mutually consistent cache counters.
//!
//! Determinism: all request streams derive from fixed ChaCha12 seeds, and
//! every assertion is interleaving-independent (exact answers are compared
//! across repeats/threads, not against a wall-clock schedule).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use concorde_suite::core::cache::{sweep_content_hash, CacheStats, FeatureKey};
use concorde_suite::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn tiny_service_parts() -> (ConcordePredictor, ReproProfile) {
    let mut profile = ReproProfile::quick();
    profile.region_len = 2_048;
    profile.warmup_len = 2_048;
    profile.epochs = 1;
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 8,
        seed: 31,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 20]),
        threads: 0,
    });
    let model = train_model(&data, &profile, &TrainOptions::default());
    (model, profile)
}

/// The churn request mix: two hot keys (full-length regions that stay
/// resident) and a ring of cold keys (short regions, cheap to rebuild) that
/// the byte budget keeps evicting.
fn churn_request(rng: &mut ChaCha12Rng, id: u64) -> PredictRequest {
    let hot = rng.gen_range(0..10) < 7;
    let mut spec = ArchSpec::base("n1");
    // A small arch wobble on the same store grid: exercises per-request
    // assembly without multiplying stores.
    spec.rob = Some(128 + 32 * rng.gen_range(0..2u32));
    if hot {
        let mut r =
            PredictRequest::new(id, if rng.gen_range(0..2) == 0 { "S5" } else { "O1" }, spec);
        r.trace = 0;
        r
    } else {
        let workloads = ["S5", "O1", "C1"];
        let mut r = PredictRequest::new(id, workloads[rng.gen_range(0..3) as usize], spec);
        r.start = 1_000_000 * u64::from(1 + rng.gen_range(0..6u32));
        r.len = 512;
        r
    }
}

/// Identity of an exact answer: everything that determines the CPI bits.
fn answer_key(req: &PredictRequest) -> (KeyStr, u32, u64, u32, Option<u32>) {
    (
        req.workload.clone(),
        req.trace,
        req.start,
        req.len,
        req.arch.rob,
    )
}

/// Asserts the monotone counters of `later` never regressed vs `earlier`,
/// and that each snapshot is internally consistent.
fn assert_cache_stats_consistent(earlier: &CacheStats, later: &CacheStats) {
    assert!(later.hits >= earlier.hits, "hits regressed");
    assert!(later.misses >= earlier.misses, "misses regressed");
    assert!(later.evictions >= earlier.evictions, "evictions regressed");
    // Evictions can never outnumber insertions (every store was admitted
    // exactly once per build/preload).
    assert!(
        later.evictions <= later.misses + 2,
        "evicted more than built"
    );
}

#[test]
fn soak_churn_drains_clean_with_stable_answers() {
    let (model, profile) = tiny_service_parts();

    // Offline artifact for the S5 hot key — the preload+evict cycle's seed.
    let arch = MicroArch::arm_n1();
    let sweep = SweepConfig::for_arch(&arch);
    let spec = by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.region_len);
    let hot_store = FeatureStore::precompute(&[], &full.instrs, &sweep, &profile);
    let hot_bytes = hot_store.approx_bytes();
    let key = FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start: 0,
        region_len: profile.region_len as u32,
        sweep_hash: sweep_content_hash(&sweep),
    };
    let path = std::env::temp_dir().join("concorde_soak_preload.cfa");
    StoreArtifact::new(key, hot_store).save(&path).unwrap();

    let service = Box::leak(Box::new(PredictionService::start(
        model,
        profile,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            batch_deadline: Duration::from_micros(200),
            precompute_workers: 2,
            // ~2½ hot-sized stores on ONE shard: the hot pair mostly stays
            // resident while the cold ring keeps evicting — every cold
            // repeat is a genuine rebuild of an evicted store.
            cache_shards: 1,
            cache_bytes: hot_bytes * 5 / 2,
            ..ServeConfig::default()
        },
    )));
    service.preload_artifact(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let service: &PredictionService = service;

    // The preloaded answer, recorded before any churn: the store will be
    // evicted and rebuilt during the churn, and the rebuilt answer must
    // match this bitwise at the end.
    let client = service.client();
    let mut preloaded_req = PredictRequest::new(0, "S5", ArchSpec::base("n1"));
    preloaded_req.arch.rob = Some(128);
    let preloaded = client.predict(preloaded_req.clone()).unwrap();
    assert!(preloaded.cached, "preloaded hot key must start as a hit");
    let preloaded_bits = preloaded.cpi.unwrap().to_bits();

    // TCP front end for the connection-level churn.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = service.serve_tcp(listener);
    });

    let mid_stats = service.cache_stats();
    let dropped = Arc::new(AtomicU64::new(0));

    // Seeded multi-client churn: 3 in-process clients, each its own RNG.
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let client = service.client();
        let dropped = Arc::clone(&dropped);
        handles.push(std::thread::spawn(move || {
            let mut rng = ChaCha12Rng::seed_from_u64(1000 + t);
            let mut seen: HashMap<_, u64> = HashMap::new();
            for i in 0..30u64 {
                let id = t * 1_000 + i;
                if i % 11 == 3 {
                    // Abandon a request mid-flight: the engine must answer
                    // into the dropped channel without wedging or leaking a
                    // parked slot.
                    let req = churn_request(&mut rng, id);
                    let rx = client.submit(req);
                    drop(rx);
                    dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let resps = if i % 7 == 0 {
                    let reqs: Vec<PredictRequest> = (0..4)
                        .map(|j| churn_request(&mut rng, id * 10 + j))
                        .collect();
                    let got = client.predict_many(reqs.clone()).expect("batch");
                    reqs.into_iter().zip(got).collect::<Vec<_>>()
                } else {
                    let req = churn_request(&mut rng, id);
                    let resp = client.predict(req.clone()).expect("predict");
                    vec![(req, resp)]
                };
                for (req, resp) in resps {
                    let cpi = resp
                        .cpi
                        .unwrap_or_else(|| panic!("id {} errored: {:?}", resp.id, resp.error));
                    assert!(!resp.approx, "no shedding configured in this soak");
                    // Bitwise-stable exact answers across cache hits, cold
                    // builds, and evict-rebuild cycles alike.
                    let bits = cpi.to_bits();
                    let prev = seen.entry(answer_key(&req)).or_insert(bits);
                    assert_eq!(
                        *prev,
                        bits,
                        "answer for {:?} drifted across rebuilds",
                        answer_key(&req)
                    );
                }
            }
            seen
        }));
    }

    // Connection-level churn in parallel: full TCP round trips plus a
    // connection that writes a batch and drops before reading the reply.
    let mut tcp = TcpClient::connect(&addr).expect("tcp connect");
    let tcp_reqs = vec![
        PredictRequest::new(9_001, "S5", ArchSpec::base("n1")),
        PredictRequest::new(9_002, "O1", ArchSpec::base("n1")),
    ];
    let tcp_resps = tcp.predict_many(&tcp_reqs).expect("tcp batch");
    assert_eq!(tcp_resps.len(), 2);
    for _ in 0..3 {
        use std::io::Write;
        let mut drop_conn = std::net::TcpStream::connect(&addr).unwrap();
        let line = serde_json::to_string(&vec![
            PredictRequest::new(9_100, "C1", ArchSpec::base("n1")),
            PredictRequest::new(9_101, "S5", ArchSpec::base("big")),
        ])
        .unwrap();
        drop_conn.write_all(line.as_bytes()).unwrap();
        drop_conn.write_all(b"\n").unwrap();
        drop_conn.flush().unwrap();
        // Drop mid-batch: the server is still computing the reply.
        drop(drop_conn);
    }

    // Merge per-thread answer maps and assert cross-thread bitwise equality.
    let mut merged: HashMap<_, u64> = HashMap::new();
    for h in handles {
        let seen = h.join().expect("churn thread");
        for (k, bits) in seen {
            let prev = merged.entry(k.clone()).or_insert(bits);
            assert_eq!(*prev, bits, "answer for {k:?} differs across threads");
        }
    }

    // Drain: every build lands, every parked job is re-enqueued and
    // answered, nothing is stranded.
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let m = service.metrics();
        if m.parked == 0
            && m.miss_backlog == 0
            && m.inflight_builds == 0
            && m.queue_depth == 0
            && m.completed >= m.submitted
        {
            break;
        }
        assert!(Instant::now() < deadline, "soak never drained: {m:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let m = service.metrics();
    assert_eq!(m.errored, 0, "soak must not produce error responses");
    assert_eq!(
        m.completed, m.submitted,
        "every submission (dropped receivers included) must be answered"
    );
    assert!(
        dropped.load(Ordering::Relaxed) > 0,
        "drop path not exercised"
    );

    // Cache counters: monotone vs the mid-churn snapshot, internally
    // consistent, and inside the configured budget.
    let final_stats = service.cache_stats();
    assert_cache_stats_consistent(&mid_stats, &final_stats);
    assert!(
        final_stats.evictions > 0,
        "the tight budget must have forced evict/rebuild cycles"
    );
    let report = service.stats();
    assert_eq!(
        report
            .cache
            .per_shard
            .iter()
            .map(|s| s.bytes)
            .sum::<usize>(),
        report.cache.totals.bytes,
        "per-shard occupancy must sum to the aggregate"
    );
    assert!(
        report.cache.totals.bytes <= report.cache.budget_bytes,
        "resident bytes exceed the budget after drain"
    );

    // The preloaded key — evicted and rebuilt during churn — still answers
    // bitwise identically to its artifact-backed first answer.
    let again = client.predict(preloaded_req).unwrap();
    assert_eq!(
        again.cpi.unwrap().to_bits(),
        preloaded_bits,
        "preload → evict → rebuild must reproduce the artifact answer"
    );
}
